//! Property-based tests of the ReVive invariants (DESIGN.md §5): the
//! parity-group invariant, log-replay exactness under arbitrary write
//! sequences, robustness to lossy L bits (redundant entries), and the §4.2
//! ordering races.

use proptest::prelude::*;
use revive_coherence::port::MemPort;
use revive_core::lbits::LBits;
use revive_core::log::{MemLog, RECORD_LINES};
use revive_core::parity::ParityMap;
use revive_mem::addr::{AddressMap, LineAddr, PageAddr, PAGE_SIZE};
use revive_mem::line::LineData;
use revive_mem::main_memory::NodeMemory;
use revive_sim::types::NodeId;

/// A miniature functional machine: 4 nodes × 4 pages, 3+1 parity, a log in
/// each node's highest data page, and hardware-faithful write semantics
/// (log-before-data, parity on every memory write).
struct MiniWorld {
    map: AddressMap,
    parity: ParityMap,
    memories: Vec<NodeMemory>,
    logs: Vec<MemLog>,
    lbits: Vec<LBits>,
    interval: u64,
}

struct NodePort<'a> {
    mem: &'a mut NodeMemory,
    map: AddressMap,
}

impl MemPort for NodePort<'_> {
    fn read(&mut self, line: LineAddr) -> LineData {
        self.mem.read_line(self.map.local_line_index(line))
    }
    fn write(&mut self, line: LineAddr, data: LineData) {
        self.mem.write_line(self.map.local_line_index(line), data);
    }
}

impl MiniWorld {
    fn new(lossy_lbits: Option<usize>) -> MiniWorld {
        let map = AddressMap::new(4, 4 * PAGE_SIZE as u64);
        let parity = ParityMap::new(map, 3);
        let memories = (0..4).map(|_| NodeMemory::new(4 * PAGE_SIZE)).collect();
        let logs = (0..4)
            .map(|n| {
                let node = NodeId::from(n);
                let page = (0..4u64)
                    .rev()
                    .map(|s| map.global_page(node, s))
                    .find(|&p| !parity.is_parity_page(p))
                    .expect("a data page exists");
                MemLog::new(node, page.lines().collect())
            })
            .collect();
        let lbits = (0..4)
            .map(|_| match lossy_lbits {
                Some(cap) => LBits::dir_cache(map.lines_per_node(), cap),
                None => LBits::full(map.lines_per_node()),
            })
            .collect();
        MiniWorld {
            map,
            parity,
            memories,
            logs,
            lbits,
            interval: 0,
        }
    }

    /// One of the writable (non-parity, non-log) lines, by dense index.
    fn app_lines(&self) -> Vec<LineAddr> {
        let mut out = Vec::new();
        for n in 0..4 {
            let node = NodeId::from(n);
            let log_pages: std::collections::HashSet<PageAddr> = self.logs[n]
                .slot_lines()
                .iter()
                .map(|l| l.page())
                .collect();
            for page in self.map.pages_of(node) {
                if self.parity.is_parity_page(page) || log_pages.contains(&page) {
                    continue;
                }
                out.push(LineAddr(page.first_line().0 + (n as u64 * 3) % 64));
                out.push(LineAddr(page.first_line().0 + 17 + n as u64));
            }
        }
        out
    }

    fn apply_delta(&mut self, pline: LineAddr, delta: LineData) {
        let home = self.map.home_of_line(pline).index();
        let local = self.map.local_line_index(pline);
        self.memories[home].xor_line(local, delta);
    }

    /// The hardware write path: first write per interval logs the old
    /// contents (with log parity), every write updates data parity.
    fn logged_write(&mut self, line: LineAddr, new: LineData) {
        let node = self.map.home_of_line(line).index();
        let local = self.map.local_line_index(line);
        let old = self.memories[node].read_line(local);
        if !self.lbits[node].is_logged(local) {
            let deltas = {
                let mut port = NodePort {
                    mem: &mut self.memories[node],
                    map: self.map,
                };
                self.logs[node].append(self.interval, line, old, true, &mut port)
            };
            for (slot, delta) in deltas {
                let pl = self.parity.parity_line_of(slot);
                self.apply_delta(pl, delta);
            }
            self.lbits[node].set_logged(local);
        }
        self.memories[node].write_line(local, new);
        let pl = self.parity.parity_line_of(line);
        self.apply_delta(pl, old ^ new);
    }

    fn commit_checkpoint(&mut self) {
        self.interval += 1;
        for n in 0..4 {
            let deltas = {
                let mut port = NodePort {
                    mem: &mut self.memories[n],
                    map: self.map,
                };
                self.logs[n].mark_checkpoint(self.interval, true, &mut port)
            };
            for (slot, delta) in deltas {
                let pl = self.parity.parity_line_of(slot);
                self.apply_delta(pl, delta);
            }
            self.lbits[n].gang_clear();
            self.logs[n].reclaim_before(self.interval.saturating_sub(1));
        }
    }

    fn check_parity_everywhere(&self) -> Result<(), String> {
        for n in 0..4 {
            for page in self.map.pages_of(NodeId::from(n)) {
                if self.parity.is_parity_page(page) {
                    continue;
                }
                if let Some(off) = self.parity.check_group(page, |l| {
                    self.memories[self.map.home_of_line(l).index()]
                        .read_line(self.map.local_line_index(l))
                }) {
                    return Err(format!("group of {page} violated at offset {off}"));
                }
            }
        }
        Ok(())
    }

    fn snapshot(&self) -> Vec<Vec<u8>> {
        self.memories.iter().map(NodeMemory::snapshot).collect()
    }

    /// Rolls every node back to `target` via scan-based replay (the same
    /// algorithm recovery uses), maintaining parity.
    fn rollback(&mut self, target: u64) {
        for n in 0..4 {
            let entries = self.logs[n].rollback_entries(target, |l| {
                self.memories[n].read_line(self.map.local_line_index(l))
            });
            for e in entries {
                let local = self.map.local_line_index(e.line);
                let old = self.memories[n].read_line(local);
                self.memories[n].write_line(local, e.data);
                let pl = self.parity.parity_line_of(e.line);
                self.apply_delta(pl, old ^ e.data);
            }
        }
    }
}

impl MiniWorld {
    /// Runs the real recovery engine (the one the machine uses) against
    /// this world.
    fn recover_engine(&mut self, target: u64, lost: Option<usize>) {
        if let Some(l) = lost {
            self.memories[l].destroy();
        }
        let logs: Vec<&MemLog> = self.logs.iter().collect();
        let timing = revive_core::recovery::RecoveryTiming::derive(3, 3);
        revive_core::recovery::recover(
            revive_core::recovery::RecoveryInput {
                memories: &mut self.memories,
                logs: &logs,
                parity: &self.parity,
                target_interval: target,
                lost: lost.map(NodeId::from),
            },
            &timing,
        );
    }
}

/// Strategy: a trace of (line index, value seed, checkpoint?) steps.
fn trace() -> impl Strategy<Value = Vec<(usize, u64, bool)>> {
    proptest::collection::vec((0usize..64, any::<u64>(), proptest::bool::weighted(0.08)), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any write/checkpoint trace, every parity group XORs to zero.
    #[test]
    fn parity_invariant_holds(ops in trace()) {
        let mut w = MiniWorld::new(None);
        let lines = w.app_lines();
        for (i, seed, ckpt) in ops {
            if ckpt {
                w.commit_checkpoint();
            } else {
                w.logged_write(lines[i % lines.len()], LineData::from_seed(seed));
            }
        }
        prop_assert!(w.check_parity_everywhere().is_ok());
    }

    /// Rollback to the latest checkpoint restores the exact memory image
    /// captured at its commit — for any interleaving of writes.
    #[test]
    #[allow(clippy::needless_range_loop)] // node index names both memories and reference
    fn rollback_is_value_exact(before in trace(), after in trace()) {
        let mut w = MiniWorld::new(None);
        let lines = w.app_lines();
        for (i, seed, _) in before {
            w.logged_write(lines[i % lines.len()], LineData::from_seed(seed));
        }
        w.commit_checkpoint();
        let target = w.interval;
        let reference = w.snapshot();
        for (i, seed, _) in &after {
            w.logged_write(lines[i % lines.len()], LineData::from_seed(*seed));
        }
        w.rollback(target);
        // Compare every non-log page (log pages legitimately accumulated
        // the `after` records).
        let log_pages: std::collections::HashSet<PageAddr> = w
            .logs
            .iter()
            .flat_map(|l| l.slot_lines().iter().map(|s| s.page()))
            .collect();
        for n in 0..4 {
            for page in w.map.pages_of(NodeId::from(n)) {
                if log_pages.contains(&page) || w.parity.is_parity_page(page) {
                    continue;
                }
                for line in page.lines() {
                    let local = w.map.local_line_index(line);
                    let got = w.memories[n].read_line(local);
                    let base = (local * 64) as usize;
                    let want: [u8; 64] =
                        reference[n][base..base + 64].try_into().expect("64 bytes");
                    prop_assert_eq!(got, LineData::from(want), "line {} differs", line);
                }
            }
        }
        // And replay maintained parity throughout.
        prop_assert!(w.check_parity_everywhere().is_ok());
    }

    /// Lossy L bits (directory-cache mode, Section 4.1.2) produce redundant
    /// log entries but never break rollback: reverse-order replay applies
    /// the oldest (true checkpoint) value last.
    #[test]
    fn lossy_lbits_never_break_rollback(
        cap in 1usize..8,
        after in trace(),
    ) {
        let mut w = MiniWorld::new(Some(cap));
        let lines = w.app_lines();
        w.commit_checkpoint();
        let target = w.interval;
        let reference = w.snapshot();
        let mut evictions_possible = false;
        for (i, seed, _) in &after {
            w.logged_write(lines[i % lines.len()], LineData::from_seed(*seed));
            evictions_possible |= w.lbits.iter().any(|l| l.evictions > 0);
        }
        let _ = evictions_possible;
        w.rollback(target);
        for (n, memory) in w.memories.iter().enumerate() {
            let log_pages: std::collections::HashSet<PageAddr> = w.logs[n]
                .slot_lines()
                .iter()
                .map(|s| s.page())
                .collect();
            for page in w.map.pages_of(NodeId::from(n)) {
                if log_pages.contains(&page) || w.parity.is_parity_page(page) {
                    continue;
                }
                for line in page.lines() {
                    let local = w.map.local_line_index(line);
                    let base = (local * 64) as usize;
                    let want: [u8; 64] =
                        reference[n][base..base + 64].try_into().expect("64 bytes");
                    prop_assert_eq!(memory.read_line(local), LineData::from(want));
                }
            }
        }
    }

    /// The full recovery engine, fuzzed: arbitrary pre/post-checkpoint
    /// writes, an arbitrary lost node (or none) — recovery must restore
    /// every application line to the checkpoint image and re-establish the
    /// global parity invariant.
    #[test]
    fn recovery_engine_is_exact_for_any_lost_node(
        before in trace(),
        after in trace(),
        lost in proptest::option::of(0usize..4),
    ) {
        let mut w = MiniWorld::new(None);
        let lines = w.app_lines();
        for (i, seed, _) in before {
            w.logged_write(lines[i % lines.len()], LineData::from_seed(seed));
        }
        w.commit_checkpoint();
        let target = w.interval;
        let reference = w.snapshot();
        for (i, seed, _) in &after {
            w.logged_write(lines[i % lines.len()], LineData::from_seed(*seed));
        }
        w.recover_engine(target, lost);
        let log_pages: std::collections::HashSet<PageAddr> = w
            .logs
            .iter()
            .flat_map(|l| l.slot_lines().iter().map(|s| s.page()))
            .collect();
        for (n, memory) in w.memories.iter().enumerate() {
            for page in w.map.pages_of(NodeId::from(n)) {
                if log_pages.contains(&page) || w.parity.is_parity_page(page) {
                    continue;
                }
                for line in page.lines() {
                    let local = w.map.local_line_index(line);
                    let base = (local * 64) as usize;
                    let want: [u8; 64] =
                        reference[n][base..base + 64].try_into().expect("64 bytes");
                    prop_assert_eq!(
                        memory.read_line(local),
                        LineData::from(want),
                        "node {} line {} differs (lost={:?})",
                        n,
                        line,
                        lost
                    );
                }
            }
        }
        prop_assert!(w.check_parity_everywhere().is_ok());
    }

    /// The §4.2 "Atomic Log Update" race: corrupting the *last* record's
    /// marker (an append cut short by an error) makes recovery skip exactly
    /// that record and still restore the previous checkpoint correctly.
    #[test]
    #[allow(clippy::needless_range_loop)] // node index names both memories and reference
    fn torn_tail_record_is_skipped(writes in proptest::collection::vec((0usize..16, any::<u64>()), 1..20)) {
        let mut w = MiniWorld::new(None);
        let lines = w.app_lines();
        w.commit_checkpoint();
        let target = w.interval;
        let reference = w.snapshot();
        for (i, seed) in &writes {
            w.logged_write(lines[i % lines.len()], LineData::from_seed(*seed));
        }
        // Tear the most recent record's marker on node 0 (if it has one).
        let scanned = w.logs[0].scan(|l| {
            w.memories[0].read_line(w.map.local_line_index(l))
        });
        if let Some(last) = scanned.last() {
            let marker_slot = w.logs[0].slot_lines()[last.data_slot + RECORD_LINES - 1];
            let local = w.map.local_line_index(marker_slot);
            let mut torn = w.memories[0].read_line(local);
            torn.set_u64_at(32, 0xDEAD_BEEF);
            w.memories[0].write_line(local, torn);
            // The torn record vanishes from the scan…
            let rescanned = w.logs[0].scan(|l| {
                w.memories[0].read_line(w.map.local_line_index(l))
            });
            prop_assert_eq!(rescanned.len() + 1, scanned.len());
        }
        // …and rollback still restores every line that *was* durably
        // logged. (The torn record's line may retain its post-checkpoint
        // value — the paper's semantics: an incomplete log entry means the
        // data write it guarded never happened.)
        w.rollback(target);
        for n in 1..4 {
            let log_pages: std::collections::HashSet<PageAddr> = w.logs[n]
                .slot_lines()
                .iter()
                .map(|s| s.page())
                .collect();
            for page in w.map.pages_of(NodeId::from(n)) {
                if log_pages.contains(&page) || w.parity.is_parity_page(page) {
                    continue;
                }
                for line in page.lines() {
                    let local = w.map.local_line_index(line);
                    let base = (local * 64) as usize;
                    let want: [u8; 64] =
                        reference[n][base..base + 64].try_into().expect("64 bytes");
                    prop_assert_eq!(w.memories[n].read_line(local), LineData::from(want));
                }
            }
        }
    }
}
