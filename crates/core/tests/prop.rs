//! Property-based tests of the ReVive invariants (DESIGN.md §5): the
//! parity-group invariant, log-replay exactness under arbitrary write
//! sequences, robustness to lossy L bits (redundant entries), and the §4.2
//! ordering races.

use revive_coherence::port::MemPort;
use revive_core::lbits::LBits;
use revive_core::log::{MemLog, RECORD_LINES};
use revive_core::parity::ParityMap;
use revive_mem::addr::{AddressMap, LineAddr, PageAddr, PAGE_SIZE};
use revive_mem::line::LineData;
use revive_mem::main_memory::NodeMemory;
use revive_sim::rng::DetRng;
use revive_sim::types::NodeId;

/// A miniature functional machine: 4 nodes × 4 pages, 3+1 parity, a log in
/// each node's highest data page, and hardware-faithful write semantics
/// (log-before-data, parity on every memory write).
struct MiniWorld {
    map: AddressMap,
    parity: ParityMap,
    memories: Vec<NodeMemory>,
    logs: Vec<MemLog>,
    lbits: Vec<LBits>,
    interval: u64,
}

struct NodePort<'a> {
    mem: &'a mut NodeMemory,
    map: AddressMap,
}

impl MemPort for NodePort<'_> {
    fn read(&mut self, line: LineAddr) -> LineData {
        self.mem.read_line(self.map.local_line_index(line))
    }
    fn write(&mut self, line: LineAddr, data: LineData) {
        self.mem.write_line(self.map.local_line_index(line), data);
    }
}

impl MiniWorld {
    fn new(lossy_lbits: Option<usize>) -> MiniWorld {
        let map = AddressMap::new(4, 4 * PAGE_SIZE as u64);
        let parity = ParityMap::new(map, 3);
        let memories = (0..4).map(|_| NodeMemory::new(4 * PAGE_SIZE)).collect();
        let logs = (0..4)
            .map(|n| {
                let node = NodeId::from(n);
                let page = (0..4u64)
                    .rev()
                    .map(|s| map.global_page(node, s))
                    .find(|&p| !parity.is_parity_page(p))
                    .expect("a data page exists");
                MemLog::new(node, page.lines().collect())
            })
            .collect();
        let lbits = (0..4)
            .map(|_| match lossy_lbits {
                Some(cap) => LBits::dir_cache(map.lines_per_node(), cap),
                None => LBits::full(map.lines_per_node()),
            })
            .collect();
        MiniWorld {
            map,
            parity,
            memories,
            logs,
            lbits,
            interval: 0,
        }
    }

    /// One of the writable (non-parity, non-log) lines, by dense index.
    fn app_lines(&self) -> Vec<LineAddr> {
        let mut out = Vec::new();
        for n in 0..4 {
            let node = NodeId::from(n);
            let log_pages: std::collections::HashSet<PageAddr> =
                self.logs[n].slot_lines().iter().map(|l| l.page()).collect();
            for page in self.map.pages_of(node) {
                if self.parity.is_parity_page(page) || log_pages.contains(&page) {
                    continue;
                }
                out.push(LineAddr(page.first_line().0 + (n as u64 * 3) % 64));
                out.push(LineAddr(page.first_line().0 + 17 + n as u64));
            }
        }
        out
    }

    fn apply_delta(&mut self, pline: LineAddr, delta: LineData) {
        let home = self.map.home_of_line(pline).index();
        let local = self.map.local_line_index(pline);
        self.memories[home].xor_line(local, delta);
    }

    /// The hardware write path: first write per interval logs the old
    /// contents (with log parity), every write updates data parity.
    fn logged_write(&mut self, line: LineAddr, new: LineData) {
        let node = self.map.home_of_line(line).index();
        let local = self.map.local_line_index(line);
        let old = self.memories[node].read_line(local);
        if !self.lbits[node].is_logged(local) {
            let deltas = {
                let mut port = NodePort {
                    mem: &mut self.memories[node],
                    map: self.map,
                };
                self.logs[node].append(self.interval, line, old, true, &mut port)
            };
            for (slot, delta) in deltas {
                let pl = self.parity.parity_line_of(slot);
                self.apply_delta(pl, delta);
            }
            self.lbits[node].set_logged(local);
        }
        self.memories[node].write_line(local, new);
        let pl = self.parity.parity_line_of(line);
        self.apply_delta(pl, old ^ new);
    }

    fn commit_checkpoint(&mut self) {
        self.interval += 1;
        for n in 0..4 {
            let deltas = {
                let mut port = NodePort {
                    mem: &mut self.memories[n],
                    map: self.map,
                };
                self.logs[n].mark_checkpoint(self.interval, true, &mut port)
            };
            for (slot, delta) in deltas {
                let pl = self.parity.parity_line_of(slot);
                self.apply_delta(pl, delta);
            }
            self.lbits[n].gang_clear();
            self.logs[n].reclaim_before(self.interval.saturating_sub(1));
        }
    }

    fn check_parity_everywhere(&self) -> Result<(), String> {
        for n in 0..4 {
            for page in self.map.pages_of(NodeId::from(n)) {
                if self.parity.is_parity_page(page) {
                    continue;
                }
                if let Some(off) = self.parity.check_group(page, |l| {
                    self.memories[self.map.home_of_line(l).index()]
                        .read_line(self.map.local_line_index(l))
                }) {
                    return Err(format!("group of {page} violated at offset {off}"));
                }
            }
        }
        Ok(())
    }

    fn snapshot(&self) -> Vec<Vec<u8>> {
        self.memories.iter().map(NodeMemory::snapshot).collect()
    }

    /// Rolls every node back to `target` via scan-based replay (the same
    /// algorithm recovery uses), maintaining parity.
    fn rollback(&mut self, target: u64) {
        for n in 0..4 {
            let entries = self.logs[n].rollback_entries(target, |l| {
                self.memories[n].read_line(self.map.local_line_index(l))
            });
            for e in entries {
                let local = self.map.local_line_index(e.line);
                let old = self.memories[n].read_line(local);
                self.memories[n].write_line(local, e.data);
                let pl = self.parity.parity_line_of(e.line);
                self.apply_delta(pl, old ^ e.data);
            }
        }
    }
}

impl MiniWorld {
    /// Runs the real recovery engine (the one the machine uses) against
    /// this world.
    fn recover_engine(&mut self, target: u64, lost: Option<usize>) {
        if let Some(l) = lost {
            self.memories[l].destroy();
        }
        let lost_nodes: Vec<NodeId> = lost.map(NodeId::from).into_iter().collect();
        let logs: Vec<&MemLog> = self.logs.iter().collect();
        let timing = revive_core::recovery::RecoveryTiming::derive(3, 3);
        let redundancy = revive_core::Redundancy::Xor(self.parity);
        revive_core::recovery::recover(
            revive_core::recovery::RecoveryInput {
                memories: &mut self.memories,
                logs: &logs,
                redundancy: &redundancy,
                target_interval: target,
                lost: &lost_nodes,
            },
            &timing,
        )
        .expect("within-budget recovery");
    }
}

/// A random trace of (line index, value seed, checkpoint?) steps.
fn trace(rng: &mut DetRng) -> Vec<(usize, u64, bool)> {
    let len = rng.range(1, 120);
    (0..len)
        .map(|_| (rng.index(64), rng.next_u64(), rng.chance(0.08)))
        .collect()
}

const CASES: u64 = 64;

/// After any write/checkpoint trace, every parity group XORs to zero.
#[test]
fn parity_invariant_holds() {
    let mut rng = DetRng::seed(0x9a21);
    for _ in 0..CASES {
        let mut w = MiniWorld::new(None);
        let lines = w.app_lines();
        for (i, seed, ckpt) in trace(&mut rng) {
            if ckpt {
                w.commit_checkpoint();
            } else {
                w.logged_write(lines[i % lines.len()], LineData::from_seed(seed));
            }
        }
        assert!(w.check_parity_everywhere().is_ok());
    }
}

/// Rollback to the latest checkpoint restores the exact memory image
/// captured at its commit — for any interleaving of writes.
#[test]
#[allow(clippy::needless_range_loop)] // node index names both memories and reference
fn rollback_is_value_exact() {
    let mut rng = DetRng::seed(0x2011b);
    for _ in 0..CASES {
        let mut w = MiniWorld::new(None);
        let lines = w.app_lines();
        for (i, seed, _) in trace(&mut rng) {
            w.logged_write(lines[i % lines.len()], LineData::from_seed(seed));
        }
        w.commit_checkpoint();
        let target = w.interval;
        let reference = w.snapshot();
        for (i, seed, _) in trace(&mut rng) {
            w.logged_write(lines[i % lines.len()], LineData::from_seed(seed));
        }
        w.rollback(target);
        // Compare every non-log page (log pages legitimately accumulated
        // the `after` records).
        let log_pages: std::collections::HashSet<PageAddr> = w
            .logs
            .iter()
            .flat_map(|l| l.slot_lines().iter().map(|s| s.page()))
            .collect();
        for n in 0..4 {
            for page in w.map.pages_of(NodeId::from(n)) {
                if log_pages.contains(&page) || w.parity.is_parity_page(page) {
                    continue;
                }
                for line in page.lines() {
                    let local = w.map.local_line_index(line);
                    let got = w.memories[n].read_line(local);
                    let base = (local * 64) as usize;
                    let want: [u8; 64] =
                        reference[n][base..base + 64].try_into().expect("64 bytes");
                    assert_eq!(got, LineData::from(want), "line {line} differs");
                }
            }
        }
        // And replay maintained parity throughout.
        assert!(w.check_parity_everywhere().is_ok());
    }
}

/// Lossy L bits (directory-cache mode, Section 4.1.2) produce redundant
/// log entries but never break rollback: reverse-order replay applies
/// the oldest (true checkpoint) value last.
#[test]
fn lossy_lbits_never_break_rollback() {
    let mut rng = DetRng::seed(0x1b175);
    for _ in 0..CASES {
        let cap = rng.range(1, 8) as usize;
        let mut w = MiniWorld::new(Some(cap));
        let lines = w.app_lines();
        w.commit_checkpoint();
        let mut target = w.interval;
        let mut reference = w.snapshot();
        for (i, seed, _) in trace(&mut rng) {
            // Lossy L bits re-log the same line within one interval, so a
            // long interval can exhaust the log. The real machine forces an
            // early checkpoint at high log utilization
            // (`System::maybe_early_checkpoint`); model the same policy.
            if w.logs.iter().any(|l| l.utilization() >= 0.5) {
                w.commit_checkpoint();
                target = w.interval;
                reference = w.snapshot();
            }
            w.logged_write(lines[i % lines.len()], LineData::from_seed(seed));
        }
        w.rollback(target);
        for (n, memory) in w.memories.iter().enumerate() {
            let log_pages: std::collections::HashSet<PageAddr> =
                w.logs[n].slot_lines().iter().map(|s| s.page()).collect();
            for page in w.map.pages_of(NodeId::from(n)) {
                if log_pages.contains(&page) || w.parity.is_parity_page(page) {
                    continue;
                }
                for line in page.lines() {
                    let local = w.map.local_line_index(line);
                    let base = (local * 64) as usize;
                    let want: [u8; 64] =
                        reference[n][base..base + 64].try_into().expect("64 bytes");
                    assert_eq!(memory.read_line(local), LineData::from(want));
                }
            }
        }
    }
}

/// The full recovery engine, fuzzed: arbitrary pre/post-checkpoint
/// writes, an arbitrary lost node (or none) — recovery must restore
/// every application line to the checkpoint image and re-establish the
/// global parity invariant.
#[test]
fn recovery_engine_is_exact_for_any_lost_node() {
    let mut rng = DetRng::seed(0x2ec0);
    for _ in 0..CASES {
        let lost = if rng.chance(0.8) {
            Some(rng.index(4))
        } else {
            None
        };
        let mut w = MiniWorld::new(None);
        let lines = w.app_lines();
        for (i, seed, _) in trace(&mut rng) {
            w.logged_write(lines[i % lines.len()], LineData::from_seed(seed));
        }
        w.commit_checkpoint();
        let target = w.interval;
        let reference = w.snapshot();
        for (i, seed, _) in trace(&mut rng) {
            w.logged_write(lines[i % lines.len()], LineData::from_seed(seed));
        }
        w.recover_engine(target, lost);
        let log_pages: std::collections::HashSet<PageAddr> = w
            .logs
            .iter()
            .flat_map(|l| l.slot_lines().iter().map(|s| s.page()))
            .collect();
        for (n, memory) in w.memories.iter().enumerate() {
            for page in w.map.pages_of(NodeId::from(n)) {
                if log_pages.contains(&page) || w.parity.is_parity_page(page) {
                    continue;
                }
                for line in page.lines() {
                    let local = w.map.local_line_index(line);
                    let base = (local * 64) as usize;
                    let want: [u8; 64] =
                        reference[n][base..base + 64].try_into().expect("64 bytes");
                    assert_eq!(
                        memory.read_line(local),
                        LineData::from(want),
                        "node {n} line {line} differs (lost={lost:?})"
                    );
                }
            }
        }
        assert!(w.check_parity_everywhere().is_ok());
    }
}

/// The §4.2 "Atomic Log Update" race: corrupting the *last* record's
/// marker (an append cut short by an error) makes recovery skip exactly
/// that record and still restore the previous checkpoint correctly.
#[test]
#[allow(clippy::needless_range_loop)] // node index names both memories and reference
fn torn_tail_record_is_skipped() {
    let mut rng = DetRng::seed(0x70a2);
    for _ in 0..CASES {
        let mut w = MiniWorld::new(None);
        let lines = w.app_lines();
        w.commit_checkpoint();
        let target = w.interval;
        let reference = w.snapshot();
        let n_writes = rng.range(1, 20);
        for _ in 0..n_writes {
            let i = rng.index(16);
            let seed = rng.next_u64();
            w.logged_write(lines[i % lines.len()], LineData::from_seed(seed));
        }
        // Tear the most recent record's marker on node 0 (if it has one).
        let scanned = w.logs[0].scan(|l| w.memories[0].read_line(w.map.local_line_index(l)));
        if let Some(last) = scanned.last() {
            let marker_slot = w.logs[0].slot_lines()[last.data_slot + RECORD_LINES - 1];
            let local = w.map.local_line_index(marker_slot);
            let mut torn = w.memories[0].read_line(local);
            torn.set_u64_at(32, 0xDEAD_BEEF);
            w.memories[0].write_line(local, torn);
            // The torn record vanishes from the scan…
            let rescanned = w.logs[0].scan(|l| w.memories[0].read_line(w.map.local_line_index(l)));
            assert_eq!(rescanned.len() + 1, scanned.len());
        }
        // …and rollback still restores every line that *was* durably
        // logged. (The torn record's line may retain its post-checkpoint
        // value — the paper's semantics: an incomplete log entry means the
        // data write it guarded never happened.)
        w.rollback(target);
        for n in 1..4 {
            let log_pages: std::collections::HashSet<PageAddr> =
                w.logs[n].slot_lines().iter().map(|s| s.page()).collect();
            for page in w.map.pages_of(NodeId::from(n)) {
                if log_pages.contains(&page) || w.parity.is_parity_page(page) {
                    continue;
                }
                for line in page.lines() {
                    let local = w.map.local_line_index(line);
                    let base = (local * 64) as usize;
                    let want: [u8; 64] =
                        reference[n][base..base + 64].try_into().expect("64 bytes");
                    assert_eq!(w.memories[n].read_line(local), LineData::from(want));
                }
            }
        }
    }
}

/// `parity_page_of` / `data_pages_of` are inverses and `is_parity_page`
/// never misclassifies a data page — for plain parity and for mixed
/// (mirrored-stripe) configurations alike.
#[test]
fn parity_map_lookups_are_inverses() {
    let mut rng = DetRng::seed(0x1ae2);
    for _ in 0..CASES {
        // Random legal geometry: G in 1..=7, nodes a multiple of G+1 (and
        // even when stripes are mirrored), a few dozen pages per node.
        let g = rng.range(1, 8) as usize;
        let mut chunks = rng.range(1, 4) as usize;
        if !(g + 1).is_multiple_of(2) && !chunks.is_multiple_of(2) {
            chunks *= 2; // keep the node count even so mixed mode is legal
        }
        let nodes = (g + 1) * chunks;
        let pages_per_node = rng.range(4, 40);
        let map = AddressMap::new(nodes, pages_per_node * PAGE_SIZE as u64);
        let mirrored = rng.range(0, pages_per_node);
        let parity = if rng.chance(0.5) {
            ParityMap::new(map, g)
        } else {
            ParityMap::mixed(map, g, mirrored)
        };
        for node in 0..nodes {
            for page in map.pages_of(NodeId::from(node)) {
                if parity.is_parity_page(page) {
                    // The parity page's data set must map straight back.
                    for data in parity.data_pages_of(page) {
                        assert!(
                            !parity.is_parity_page(data),
                            "{data} listed as data for {page} but classified parity"
                        );
                        assert_eq!(
                            parity.parity_page_of(data),
                            page,
                            "data page {data} does not map back to parity page {page}"
                        );
                    }
                } else {
                    // Every data page's parity page must list it.
                    let ppage = parity.parity_page_of(page);
                    assert!(
                        parity.is_parity_page(ppage),
                        "parity_page_of({page}) = {ppage} is not a parity page"
                    );
                    assert_ne!(
                        map.home_of_page(ppage),
                        map.home_of_page(page),
                        "parity for {page} stored on the same node"
                    );
                    assert!(
                        parity.data_pages_of(ppage).contains(&page),
                        "data_pages_of({ppage}) omits {page}"
                    );
                }
            }
        }
    }
}
