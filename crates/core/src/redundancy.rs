//! Pluggable redundancy backends.
//!
//! The paper's distributed N+1 parity ([`ParityMap`], Section 3.2.1)
//! survives exactly one lost node per group. This module generalizes the
//! redundancy engine behind the [`RedundancyBackend`] trait so the same
//! log+checkpoint state can be protected by richer schemes:
//!
//! * [`Redundancy::Xor`] — the paper's N+1 XOR parity (and its mirroring /
//!   mixed degenerate forms), budget 1. The default; delegates everything
//!   to [`ParityMap`] so existing behavior is bit-identical.
//! * [`Redundancy::Double`] — RAID-6-style P+Q double parity over GF(256):
//!   chunks of `G + 2` nodes hold `G` data pages plus a P (XOR) and a Q
//!   (Reed-Solomon) page per stripe, surviving **any two** lost nodes per
//!   chunk, budget 2.
//! * [`Redundancy::Replication`] — ReStore-style k-replication: every data
//!   page is mirrored to `k` deterministic peers (chunks of `k + 1`
//!   nodes), surviving up to `k` losses per chunk with no rebuild
//!   arithmetic, budget `k`. `k = 1` reproduces the paper's mirroring
//!   layout exactly.
//!
//! All three backends share the update machinery: a backend expands each
//! protected write into `(redundancy line, payload)` pairs
//! ([`RedundancyBackend::expand_update`]); payloads are applied at the
//! destination either by XOR (parity deltas — GF(256) addition *is* XOR,
//! so Q updates ship pre-scaled deltas through the same wire path) or by
//! overwrite (replicated values, [`RedundancyBackend::stores_values`]).
//!
//! # GF(256)
//!
//! The Q parity uses the field GF(2⁸) with the primitive polynomial
//! `x⁸+x⁴+x³+x²+1` (0x11d) and generator 2: `Q = Σ gⁱ·dᵢ`. Losing two
//! chunk members leaves a 2×2 system over the field, solved per byte.

use revive_mem::addr::{AddressMap, LineAddr, PageAddr, LINES_PER_PAGE};
use revive_mem::line::LineData;
use revive_sim::types::NodeId;

use crate::parity::ParityMap;

// ---------------------------------------------------------------------------
// GF(256) arithmetic
// ---------------------------------------------------------------------------

/// Exp/log tables for GF(2⁸) with polynomial 0x11d, generator 2. The exp
/// table is doubled so `exp[log a + log b]` never needs a modulo.
const fn gf_tables() -> ([u8; 510], [u8; 256]) {
    let mut exp = [0u8; 510];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0usize;
    while i < 255 {
        exp[i] = x as u8;
        exp[i + 255] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11d;
        }
        i += 1;
    }
    (exp, log)
}

static GF: ([u8; 510], [u8; 256]) = gf_tables();

/// Multiplication in GF(256).
pub fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    GF.0[GF.1[a as usize] as usize + GF.1[b as usize] as usize]
}

/// Multiplicative inverse in GF(256).
///
/// # Panics
///
/// Panics on 0, which has no inverse.
pub fn gf_inv(a: u8) -> u8 {
    assert!(a != 0, "0 has no inverse in GF(256)");
    GF.0[255 - GF.1[a as usize] as usize]
}

/// The generator raised to `i`: `2^i` in GF(256).
pub fn gf_pow(i: usize) -> u8 {
    GF.0[i % 255]
}

/// Scales every byte of a line by `c` in GF(256) (`c = 1` is the identity,
/// so XOR-parity deltas pass through untouched).
pub fn gf_scale(data: LineData, c: u8) -> LineData {
    if c == 1 {
        return data;
    }
    let mut out = [0u8; 64];
    for (o, b) in out.iter_mut().zip(data.as_bytes()) {
        *o = gf_mul(*b, c);
    }
    LineData(out)
}

// ---------------------------------------------------------------------------
// The backend trait
// ---------------------------------------------------------------------------

/// One redundancy group: the data pages it protects and the redundancy
/// pages protecting them (1 for XOR parity, 2 for P+Q, `k` replicas).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RedundancyGroup {
    /// The protected data pages (each on a different node).
    pub data: Vec<PageAddr>,
    /// The redundancy pages (each on yet another node of the chunk).
    pub redundancy: Vec<PageAddr>,
}

/// What every redundancy scheme must provide. The machine talks to the
/// backend exclusively through this interface: page classification, update
/// expansion (commit-time traffic), the loss budget, and page
/// reconstruction (recovery Phases 2–4).
pub trait RedundancyBackend {
    /// Stable kebab-case backend name (artifacts, reports).
    fn name(&self) -> &'static str;

    /// The address map this layout covers.
    fn address_map(&self) -> &AddressMap;

    /// Lost nodes tolerated per chunk: the backend reconstructs any loss
    /// of at most this many members per chunk, and classifies anything
    /// beyond it unrecoverable.
    fn budget(&self) -> usize;

    /// Fraction of memory consumed by redundancy pages.
    fn storage_overhead(&self) -> f64;

    /// Remote pages read to rebuild one lost page (the recovery timing
    /// model's fan-in): `G` for XOR and P+Q parity, 1 for replication.
    fn rebuild_fanin(&self) -> usize;

    /// Whether `page` holds redundancy (parity / replica) rather than
    /// application data.
    fn is_redundancy_page(&self, page: PageAddr) -> bool;

    /// Whether updates protecting `page` carry raw values applied by
    /// overwrite (replication, mirroring) instead of XOR deltas (parity).
    fn stores_values(&self, page: PageAddr) -> bool;

    /// Expands one protected write into its redundancy-update targets.
    /// `payload` is the XOR delta (`old ^ new`) when
    /// [`stores_values`](RedundancyBackend::stores_values) is false, the
    /// new value otherwise; each returned pair is `(redundancy line,
    /// payload to apply there)` — Q targets receive the delta pre-scaled
    /// by the member's GF(256) coefficient, so every payload is applied
    /// at its destination by plain XOR (or overwrite).
    fn expand_update(&self, line: LineAddr, payload: LineData) -> Vec<(LineAddr, LineData)>;

    /// The full group containing `page` (data or redundancy).
    fn group_of(&self, page: PageAddr) -> RedundancyGroup;

    /// Whether losing `lost` simultaneously exceeds the budget: returns a
    /// group with more than [`budget`](RedundancyBackend::budget) lost
    /// members, or `None` when every chunk is within budget. Duplicates
    /// count once.
    fn overwhelmed_group(&self, lost: &[NodeId]) -> Option<RedundancyGroup>;

    /// Checks the redundancy invariant for the group containing `page`,
    /// reading lines through `read`. Returns the first violating line
    /// offset, if any.
    fn check_group(
        &self,
        page: PageAddr,
        read: &mut dyn FnMut(LineAddr) -> LineData,
    ) -> Option<usize>;

    /// Reconstructs `page` (data or redundancy) from the surviving members
    /// of its group, returning the page's [`LINES_PER_PAGE`] rebuilt
    /// lines. `missing` reports member pages whose contents are currently
    /// unreadable (lost and not yet rebuilt); within the budget the
    /// backend always finds enough survivors.
    fn rebuild_page(
        &self,
        page: PageAddr,
        missing: &dyn Fn(PageAddr) -> bool,
        read: &mut dyn FnMut(LineAddr) -> LineData,
    ) -> Vec<LineData>;
}

/// Counts lost members per chunk of `chunk` consecutive nodes and returns
/// the first chunk exceeding `budget` as `(representative lost node)`.
/// Chunk membership is stripe-independent for the uniform layouts (roles
/// rotate with the stripe, members do not).
fn overwhelmed_uniform(chunk: usize, budget: usize, lost: &[NodeId]) -> Option<NodeId> {
    let mut seen: Vec<NodeId> = Vec::new();
    let mut counts: Vec<(usize, usize, NodeId)> = Vec::new(); // (chunk id, count, first lost)
    for &n in lost {
        if seen.contains(&n) {
            continue;
        }
        seen.push(n);
        let id = n.index() / chunk;
        match counts.iter_mut().find(|(c, _, _)| *c == id) {
            Some((_, count, first)) => {
                *count += 1;
                if *count > budget {
                    return Some(*first);
                }
            }
            None => {
                counts.push((id, 1, n));
                if budget == 0 {
                    return Some(n);
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Double parity (RAID-6 P+Q over GF(256))
// ---------------------------------------------------------------------------

/// P+Q double-parity geometry: chunks of `G + 2` consecutive nodes; for
/// stripe `s` the node at chunk position `s mod (G+2)` holds P (plain
/// XOR), the node at `(s+1) mod (G+2)` holds Q (`Σ gⁱ·dᵢ`), and the other
/// `G` nodes hold data. Any two lost members of a chunk reconstruct.
#[derive(Clone, Copy, Debug)]
pub struct DoubleParityMap {
    map: AddressMap,
    group_data_pages: usize,
}

/// A chunk member's role at one stripe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    P,
    Q,
    /// Data member with GF coefficient index `i` (`Q` contribution
    /// `gⁱ·dᵢ`), counted in chunk-position order.
    Data(usize),
}

impl Role {
    /// The member's coefficients in the (P, Q) parity equations.
    fn coeffs(self) -> (u8, u8) {
        match self {
            Role::P => (1, 0),
            Role::Q => (0, 1),
            Role::Data(i) => (1, gf_pow(i)),
        }
    }
}

impl DoubleParityMap {
    /// Creates a P+Q layout with `group_data_pages` data pages per group.
    ///
    /// # Panics
    ///
    /// Panics if `group_data_pages` is zero or the node count is not a
    /// multiple of `group_data_pages + 2`.
    pub fn new(map: AddressMap, group_data_pages: usize) -> DoubleParityMap {
        assert!(group_data_pages > 0, "double parity needs data pages");
        let chunk = group_data_pages + 2;
        assert!(
            map.nodes().is_multiple_of(chunk),
            "node count {} is not a multiple of the double-parity chunk {}",
            map.nodes(),
            chunk
        );
        DoubleParityMap {
            map,
            group_data_pages,
        }
    }

    /// Data pages per group (`G`).
    pub fn group_data_pages(&self) -> usize {
        self.group_data_pages
    }

    /// Nodes per chunk (`G + 2`).
    pub fn chunk_size(&self) -> usize {
        self.group_data_pages + 2
    }

    fn chunk_start(&self, node: NodeId) -> usize {
        node.index() / self.chunk_size() * self.chunk_size()
    }

    fn p_pos(&self, stripe: u64) -> usize {
        (stripe % self.chunk_size() as u64) as usize
    }

    fn q_pos(&self, stripe: u64) -> usize {
        ((stripe + 1) % self.chunk_size() as u64) as usize
    }

    fn role_at(&self, pos: usize, stripe: u64) -> Role {
        let p = self.p_pos(stripe);
        let q = self.q_pos(stripe);
        if pos == p {
            Role::P
        } else if pos == q {
            Role::Q
        } else {
            Role::Data((0..pos).filter(|&j| j != p && j != q).count())
        }
    }

    fn role_of(&self, page: PageAddr) -> Role {
        let node = self.map.home_of_page(page);
        let stripe = self.map.local_page_index(page);
        self.role_at(node.index() % self.chunk_size(), stripe)
    }

    fn page_at(&self, page: PageAddr, pos: usize) -> PageAddr {
        let node = self.map.home_of_page(page);
        let stripe = self.map.local_page_index(page);
        self.map
            .global_page(NodeId::from(self.chunk_start(node) + pos), stripe)
    }

    /// The group's member pages with their roles, in chunk-position order.
    fn members(&self, page: PageAddr) -> Vec<(PageAddr, Role)> {
        let stripe = self.map.local_page_index(page);
        (0..self.chunk_size())
            .map(|pos| (self.page_at(page, pos), self.role_at(pos, stripe)))
            .collect()
    }
}

impl RedundancyBackend for DoubleParityMap {
    fn name(&self) -> &'static str {
        "double-parity"
    }

    fn address_map(&self) -> &AddressMap {
        &self.map
    }

    fn budget(&self) -> usize {
        2
    }

    fn storage_overhead(&self) -> f64 {
        2.0 / self.chunk_size() as f64
    }

    fn rebuild_fanin(&self) -> usize {
        self.group_data_pages
    }

    fn is_redundancy_page(&self, page: PageAddr) -> bool {
        !matches!(self.role_of(page), Role::Data(_))
    }

    fn stores_values(&self, _page: PageAddr) -> bool {
        false
    }

    fn expand_update(&self, line: LineAddr, payload: LineData) -> Vec<(LineAddr, LineData)> {
        let page = line.page();
        let stripe = self.map.local_page_index(page);
        let Role::Data(i) = self.role_of(page) else {
            panic!("{page} is a parity page, it takes no updates of its own");
        };
        let offset = line.index_in_page() as u64;
        let p_line = LineAddr(self.page_at(page, self.p_pos(stripe)).first_line().0 + offset);
        let q_line = LineAddr(self.page_at(page, self.q_pos(stripe)).first_line().0 + offset);
        vec![(p_line, payload), (q_line, gf_scale(payload, gf_pow(i)))]
    }

    fn group_of(&self, page: PageAddr) -> RedundancyGroup {
        let mut data = Vec::with_capacity(self.group_data_pages);
        let mut redundancy = vec![PageAddr(0); 2];
        for (p, role) in self.members(page) {
            match role {
                Role::P => redundancy[0] = p,
                Role::Q => redundancy[1] = p,
                Role::Data(_) => data.push(p),
            }
        }
        RedundancyGroup { data, redundancy }
    }

    fn overwhelmed_group(&self, lost: &[NodeId]) -> Option<RedundancyGroup> {
        overwhelmed_uniform(self.chunk_size(), 2, lost)
            .map(|n| self.group_of(self.map.global_page(n, 0)))
    }

    fn check_group(
        &self,
        page: PageAddr,
        read: &mut dyn FnMut(LineAddr) -> LineData,
    ) -> Option<usize> {
        let members = self.members(page);
        for offset in 0..LINES_PER_PAGE {
            let mut acc_p = LineData::ZERO;
            let mut acc_q = LineData::ZERO;
            for &(m, role) in &members {
                let v = read(LineAddr(m.first_line().0 + offset as u64));
                let (cp, cq) = role.coeffs();
                if cp != 0 {
                    acc_p ^= gf_scale(v, cp);
                }
                if cq != 0 {
                    acc_q ^= gf_scale(v, cq);
                }
            }
            if !acc_p.is_zero() || !acc_q.is_zero() {
                return Some(offset);
            }
        }
        None
    }

    fn rebuild_page(
        &self,
        page: PageAddr,
        missing: &dyn Fn(PageAddr) -> bool,
        read: &mut dyn FnMut(LineAddr) -> LineData,
    ) -> Vec<LineData> {
        let members = self.members(page);
        let unknown: Vec<(PageAddr, Role)> = members
            .iter()
            .copied()
            .filter(|&(m, _)| m == page || missing(m))
            .collect();
        assert!(
            unknown.len() <= 2,
            "rebuilding {page}: {} unknowns exceed the P+Q budget",
            unknown.len()
        );
        let target_role = members
            .iter()
            .find(|&&(m, _)| m == page)
            .expect("page is a member of its own group")
            .1;
        let mut out = Vec::with_capacity(LINES_PER_PAGE);
        for offset in 0..LINES_PER_PAGE {
            // Fold the known members into the two parity equations:
            // Σ cP·v = 0 and Σ cQ·v = 0, leaving the unknowns' sums.
            let mut s_p = LineData::ZERO;
            let mut s_q = LineData::ZERO;
            for &(m, role) in &members {
                if m == page || missing(m) {
                    continue;
                }
                let v = read(LineAddr(m.first_line().0 + offset as u64));
                let (cp, cq) = role.coeffs();
                if cp != 0 {
                    s_p ^= gf_scale(v, cp);
                }
                if cq != 0 {
                    s_q ^= gf_scale(v, cq);
                }
            }
            let other = unknown.iter().find(|&&(m, _)| m != page);
            let value = match other {
                // One unknown: read it straight off the equation in which
                // its coefficient is nonzero (always 1 for P/data in the
                // P equation; Q's coefficient in the Q equation is 1).
                None => match target_role {
                    Role::Q => s_q,
                    _ => s_p,
                },
                // Two unknowns x₁ (the target), x₂: solve the 2×2 system
                //   a₁x₁ ⊕ a₂x₂ = s_p,  b₁x₁ ⊕ b₂x₂ = s_q
                // whose determinant is nonzero for any two distinct
                // members (the MDS property of P+Q).
                Some(&(_, other_role)) => {
                    let (a1, b1) = target_role.coeffs();
                    let (a2, b2) = other_role.coeffs();
                    let det = gf_mul(a1, b2) ^ gf_mul(a2, b1);
                    gf_scale(gf_scale(s_p, b2) ^ gf_scale(s_q, a2), gf_inv(det))
                }
            };
            out.push(value);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// k-replication (ReStore-style)
// ---------------------------------------------------------------------------

/// k-replication geometry: chunks of `k + 1` consecutive nodes; for
/// stripe `s` the node at chunk position `(s + k) mod (k+1)` holds the
/// primary page and the other `k` nodes hold full replicas. `k = 1` is
/// exactly the paper's mirroring layout (mirror at `s mod 2`).
#[derive(Clone, Copy, Debug)]
pub struct ReplicationMap {
    map: AddressMap,
    replicas: usize,
}

impl ReplicationMap {
    /// Creates a layout replicating every data page to `replicas` peers.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero or the node count is not a multiple
    /// of `replicas + 1`.
    pub fn new(map: AddressMap, replicas: usize) -> ReplicationMap {
        assert!(replicas > 0, "replication needs at least one replica");
        let chunk = replicas + 1;
        assert!(
            map.nodes().is_multiple_of(chunk),
            "node count {} is not a multiple of the replication chunk {}",
            map.nodes(),
            chunk
        );
        ReplicationMap { map, replicas }
    }

    /// Replicas per data page (`k`).
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Nodes per chunk (`k + 1`).
    pub fn chunk_size(&self) -> usize {
        self.replicas + 1
    }

    fn chunk_start(&self, node: NodeId) -> usize {
        node.index() / self.chunk_size() * self.chunk_size()
    }

    fn primary_pos(&self, stripe: u64) -> usize {
        ((stripe + self.replicas as u64) % self.chunk_size() as u64) as usize
    }

    fn page_at(&self, page: PageAddr, pos: usize) -> PageAddr {
        let node = self.map.home_of_page(page);
        let stripe = self.map.local_page_index(page);
        self.map
            .global_page(NodeId::from(self.chunk_start(node) + pos), stripe)
    }
}

impl RedundancyBackend for ReplicationMap {
    fn name(&self) -> &'static str {
        "replication"
    }

    fn address_map(&self) -> &AddressMap {
        &self.map
    }

    fn budget(&self) -> usize {
        self.replicas
    }

    fn storage_overhead(&self) -> f64 {
        self.replicas as f64 / self.chunk_size() as f64
    }

    fn rebuild_fanin(&self) -> usize {
        1
    }

    fn is_redundancy_page(&self, page: PageAddr) -> bool {
        let node = self.map.home_of_page(page);
        let stripe = self.map.local_page_index(page);
        node.index() % self.chunk_size() != self.primary_pos(stripe)
    }

    fn stores_values(&self, _page: PageAddr) -> bool {
        true
    }

    fn expand_update(&self, line: LineAddr, payload: LineData) -> Vec<(LineAddr, LineData)> {
        let page = line.page();
        assert!(
            !self.is_redundancy_page(page),
            "{page} is a replica page, it takes no updates of its own"
        );
        let stripe = self.map.local_page_index(page);
        let offset = line.index_in_page() as u64;
        let primary = self.primary_pos(stripe);
        (0..self.chunk_size())
            .filter(|&pos| pos != primary)
            .map(|pos| {
                (
                    LineAddr(self.page_at(page, pos).first_line().0 + offset),
                    payload,
                )
            })
            .collect()
    }

    fn group_of(&self, page: PageAddr) -> RedundancyGroup {
        let stripe = self.map.local_page_index(page);
        let primary = self.primary_pos(stripe);
        let mut data = Vec::with_capacity(1);
        let mut redundancy = Vec::with_capacity(self.replicas);
        for pos in 0..self.chunk_size() {
            let p = self.page_at(page, pos);
            if pos == primary {
                data.push(p);
            } else {
                redundancy.push(p);
            }
        }
        RedundancyGroup { data, redundancy }
    }

    fn overwhelmed_group(&self, lost: &[NodeId]) -> Option<RedundancyGroup> {
        overwhelmed_uniform(self.chunk_size(), self.replicas, lost)
            .map(|n| self.group_of(self.map.global_page(n, 0)))
    }

    fn check_group(
        &self,
        page: PageAddr,
        read: &mut dyn FnMut(LineAddr) -> LineData,
    ) -> Option<usize> {
        let group = self.group_of(page);
        let primary = group.data[0];
        for offset in 0..LINES_PER_PAGE {
            let want = read(LineAddr(primary.first_line().0 + offset as u64));
            for r in &group.redundancy {
                if read(LineAddr(r.first_line().0 + offset as u64)) != want {
                    return Some(offset);
                }
            }
        }
        None
    }

    fn rebuild_page(
        &self,
        page: PageAddr,
        missing: &dyn Fn(PageAddr) -> bool,
        read: &mut dyn FnMut(LineAddr) -> LineData,
    ) -> Vec<LineData> {
        let group = self.group_of(page);
        let source = group
            .data
            .iter()
            .chain(group.redundancy.iter())
            .copied()
            .find(|&m| m != page && !missing(m))
            .unwrap_or_else(|| panic!("rebuilding {page}: every replica is missing"));
        (0..LINES_PER_PAGE)
            .map(|offset| read(LineAddr(source.first_line().0 + offset as u64)))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The dispatching backend value
// ---------------------------------------------------------------------------

/// The machine's active redundancy backend. `Copy` so the sharded engine
/// can hand it to worker lanes by value, exactly as it does the
/// [`ParityMap`] today.
#[derive(Clone, Copy, Debug)]
pub enum Redundancy {
    /// The paper's N+1 XOR parity (plus mirroring / mixed layouts).
    Xor(ParityMap),
    /// RAID-6-style P+Q double parity over GF(256).
    Double(DoubleParityMap),
    /// ReStore-style k-replication.
    Replication(ReplicationMap),
}

impl Redundancy {
    /// The inner [`ParityMap`] when this is the XOR backend.
    pub fn as_xor(&self) -> Option<&ParityMap> {
        match self {
            Redundancy::Xor(pm) => Some(pm),
            _ => None,
        }
    }

    fn backend(&self) -> &dyn RedundancyBackend {
        match self {
            Redundancy::Xor(pm) => pm,
            Redundancy::Double(dp) => dp,
            Redundancy::Replication(r) => r,
        }
    }
}

impl RedundancyBackend for Redundancy {
    fn name(&self) -> &'static str {
        self.backend().name()
    }
    fn address_map(&self) -> &AddressMap {
        self.backend().address_map()
    }
    fn budget(&self) -> usize {
        self.backend().budget()
    }
    fn storage_overhead(&self) -> f64 {
        self.backend().storage_overhead()
    }
    fn rebuild_fanin(&self) -> usize {
        self.backend().rebuild_fanin()
    }
    fn is_redundancy_page(&self, page: PageAddr) -> bool {
        self.backend().is_redundancy_page(page)
    }
    fn stores_values(&self, page: PageAddr) -> bool {
        self.backend().stores_values(page)
    }
    fn expand_update(&self, line: LineAddr, payload: LineData) -> Vec<(LineAddr, LineData)> {
        self.backend().expand_update(line, payload)
    }
    fn group_of(&self, page: PageAddr) -> RedundancyGroup {
        self.backend().group_of(page)
    }
    fn overwhelmed_group(&self, lost: &[NodeId]) -> Option<RedundancyGroup> {
        self.backend().overwhelmed_group(lost)
    }
    fn check_group(
        &self,
        page: PageAddr,
        read: &mut dyn FnMut(LineAddr) -> LineData,
    ) -> Option<usize> {
        self.backend().check_group(page, read)
    }
    fn rebuild_page(
        &self,
        page: PageAddr,
        missing: &dyn Fn(PageAddr) -> bool,
        read: &mut dyn FnMut(LineAddr) -> LineData,
    ) -> Vec<LineData> {
        self.backend().rebuild_page(page, missing, read)
    }
}

// The XOR backend delegates every operation to ParityMap so the paper's
// default behavior — down to message contents and rebuild arithmetic —
// is bit-identical to the pre-trait implementation.
impl RedundancyBackend for ParityMap {
    fn name(&self) -> &'static str {
        "xor"
    }

    fn address_map(&self) -> &AddressMap {
        self.address_map()
    }

    fn budget(&self) -> usize {
        1
    }

    fn storage_overhead(&self) -> f64 {
        self.storage_overhead()
    }

    fn rebuild_fanin(&self) -> usize {
        self.group_data_pages()
    }

    fn is_redundancy_page(&self, page: PageAddr) -> bool {
        self.is_parity_page(page)
    }

    fn stores_values(&self, page: PageAddr) -> bool {
        self.is_mirrored_page(page)
    }

    fn expand_update(&self, line: LineAddr, payload: LineData) -> Vec<(LineAddr, LineData)> {
        vec![(self.parity_line_of(line), payload)]
    }

    fn group_of(&self, page: PageAddr) -> RedundancyGroup {
        let g = ParityMap::group_of(self, page);
        RedundancyGroup {
            data: g.data,
            redundancy: vec![g.parity],
        }
    }

    fn overwhelmed_group(&self, lost: &[NodeId]) -> Option<RedundancyGroup> {
        ParityMap::overwhelmed_group(self, lost).map(|g| RedundancyGroup {
            data: g.data,
            redundancy: vec![g.parity],
        })
    }

    fn check_group(
        &self,
        page: PageAddr,
        read: &mut dyn FnMut(LineAddr) -> LineData,
    ) -> Option<usize> {
        ParityMap::check_group(self, page, read)
    }

    fn rebuild_page(
        &self,
        page: PageAddr,
        missing: &dyn Fn(PageAddr) -> bool,
        read: &mut dyn FnMut(LineAddr) -> LineData,
    ) -> Vec<LineData> {
        let group = ParityMap::group_of(self, page);
        let sources: Vec<PageAddr> = std::iter::once(group.parity)
            .chain(group.data.iter().copied())
            .filter(|&p| p != page)
            .collect();
        debug_assert!(
            sources.iter().all(|&s| !missing(s)),
            "rebuilding {page}: a second member is missing (beyond the N+1 budget)"
        );
        (0..LINES_PER_PAGE)
            .map(|offset| {
                let mut acc = LineData::ZERO;
                for src in &sources {
                    acc ^= read(LineAddr(src.first_line().0 + offset as u64));
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revive_mem::addr::PAGE_SIZE;
    use std::collections::HashMap;

    fn map(nodes: usize, pages: u64) -> AddressMap {
        AddressMap::new(nodes, pages * PAGE_SIZE as u64)
    }

    #[test]
    fn gf_field_algebra_holds() {
        // Generator powers cycle with period 255.
        assert_eq!(gf_pow(0), 1);
        assert_eq!(gf_pow(255), 1);
        assert_eq!(gf_pow(1), 2);
        // a * inv(a) == 1 for every nonzero a.
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a = {a}");
        }
        // Distributivity over XOR (field addition) on a sample.
        for a in [3u8, 0x53, 0xFF] {
            for b in [7u8, 0xCA, 0x80] {
                for c in [1u8, 0x1D, 0xF0] {
                    assert_eq!(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c));
                }
            }
        }
        assert_eq!(gf_mul(0, 77), 0);
        assert_eq!(gf_scale(LineData::fill(0xAB), 1), LineData::fill(0xAB));
    }

    #[test]
    fn double_parity_layout_is_consistent() {
        // 8 nodes, chunks of 4 (G = 2): every stripe has one P, one Q, two
        // data pages, all on distinct nodes.
        let dp = DoubleParityMap::new(map(8, 16), 2);
        let m = *RedundancyBackend::address_map(&dp);
        assert_eq!(dp.budget(), 2);
        assert_eq!(dp.storage_overhead(), 0.5);
        let mut redundancy = 0;
        let mut data = 0;
        for node in NodeId::all(8) {
            for page in m.pages_of(node) {
                if dp.is_redundancy_page(page) {
                    redundancy += 1;
                } else {
                    data += 1;
                    let g = dp.group_of(page);
                    assert_eq!(g.data.len(), 2);
                    assert_eq!(g.redundancy.len(), 2);
                    assert!(g.data.contains(&page));
                    let mut nodes: Vec<usize> = g
                        .data
                        .iter()
                        .chain(g.redundancy.iter())
                        .map(|p| m.home_of_page(*p).index())
                        .collect();
                    nodes.sort_unstable();
                    nodes.dedup();
                    assert_eq!(nodes.len(), 4, "group spans distinct nodes");
                }
            }
        }
        assert_eq!(redundancy, data, "half the pages are P or Q");
    }

    /// A tiny software memory for exercising updates and rebuilds.
    struct Mem(HashMap<LineAddr, LineData>);

    impl Mem {
        fn new() -> Mem {
            Mem(HashMap::new())
        }
        fn read(&self, l: LineAddr) -> LineData {
            self.0.get(&l).copied().unwrap_or(LineData::ZERO)
        }
        /// A protected write through the backend: applies the data write
        /// and every expanded redundancy update.
        fn protected_write(&mut self, rdx: &dyn RedundancyBackend, line: LineAddr, new: LineData) {
            let old = self.read(line);
            let stores = rdx.stores_values(line.page());
            let payload = if stores { new } else { old ^ new };
            self.0.insert(line, new);
            for (rline, rpayload) in rdx.expand_update(line, payload) {
                let v = if stores {
                    rpayload
                } else {
                    self.read(rline) ^ rpayload
                };
                self.0.insert(rline, v);
            }
        }
    }

    fn data_lines(rdx: &dyn RedundancyBackend, m: &AddressMap) -> Vec<LineAddr> {
        let mut out = Vec::new();
        for node in NodeId::all(m.nodes()) {
            for page in m.pages_of(node) {
                if !rdx.is_redundancy_page(page) {
                    out.push(LineAddr(page.first_line().0 + (node.index() % 7) as u64));
                }
            }
        }
        out
    }

    fn check_all(rdx: &dyn RedundancyBackend, mem: &Mem) {
        let m = *rdx.address_map();
        for node in NodeId::all(m.nodes()) {
            for page in m.pages_of(node) {
                if !rdx.is_redundancy_page(page) {
                    assert_eq!(
                        rdx.check_group(page, &mut |l| mem.read(l)),
                        None,
                        "invariant violated in the group of {page}"
                    );
                }
            }
        }
    }

    #[test]
    fn double_parity_survives_any_two_lost_members() {
        let dp = DoubleParityMap::new(map(4, 4), 2); // one chunk of 4
        let m = *RedundancyBackend::address_map(&dp);
        let mut mem = Mem::new();
        for (i, line) in data_lines(&dp, &m).into_iter().enumerate() {
            mem.protected_write(&dp, line, LineData::fill(0x11 + i as u8));
            mem.protected_write(&dp, line, LineData::fill(0x91 + i as u8));
        }
        check_all(&dp, &mem);
        // Every pair of lost nodes reconstructs every page byte-exactly.
        for a in 0..4usize {
            for b in 0..4usize {
                if a == b {
                    continue;
                }
                let lost: Vec<PageAddr> = m
                    .pages_of(NodeId::from(a))
                    .chain(m.pages_of(NodeId::from(b)))
                    .collect();
                for &page in &lost {
                    let missing = |p: PageAddr| lost.contains(&p) && p != page;
                    let rebuilt = dp.rebuild_page(page, &missing, &mut |l| mem.read(l));
                    for (offset, line) in rebuilt.iter().enumerate() {
                        let addr = LineAddr(page.first_line().0 + offset as u64);
                        assert_eq!(*line, mem.read(addr), "page {page} offset {offset}");
                    }
                }
            }
        }
    }

    #[test]
    fn double_parity_detects_corruption() {
        let dp = DoubleParityMap::new(map(4, 4), 2);
        let m = *RedundancyBackend::address_map(&dp);
        let mut mem = Mem::new();
        let line = data_lines(&dp, &m)[0];
        mem.protected_write(&dp, line, LineData::fill(0x7E));
        check_all(&dp, &mem);
        // Corrupt the data behind the backend's back: both checks trip.
        mem.0.insert(line, LineData::fill(0x7F));
        assert_eq!(
            dp.check_group(line.page(), &mut |l| mem.read(l)),
            Some(line.index_in_page()),
        );
    }

    #[test]
    fn replication_copies_and_rebuilds() {
        let rp = ReplicationMap::new(map(9, 6), 2); // chunks of 3, k = 2
        let m = *RedundancyBackend::address_map(&rp);
        assert_eq!(rp.budget(), 2);
        assert!((rp.storage_overhead() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(rp.rebuild_fanin(), 1);
        let mut mem = Mem::new();
        for (i, line) in data_lines(&rp, &m).into_iter().enumerate() {
            mem.protected_write(&rp, line, LineData::fill(0x21 + i as u8));
        }
        check_all(&rp, &mem);
        // Lose two of the three chunk members; every page still rebuilds.
        let lost: Vec<PageAddr> = m.pages_of(NodeId(0)).chain(m.pages_of(NodeId(2))).collect();
        for &page in &lost {
            let missing = |p: PageAddr| lost.contains(&p) && p != page;
            let rebuilt = rp.rebuild_page(page, &missing, &mut |l| mem.read(l));
            for (offset, line) in rebuilt.iter().enumerate() {
                let addr = LineAddr(page.first_line().0 + offset as u64);
                assert_eq!(*line, mem.read(addr), "page {page} offset {offset}");
            }
        }
    }

    #[test]
    fn single_replication_matches_mirroring_layout() {
        // k = 1 replication must be the paper's mirroring layout bit for
        // bit: same page classification, same update target.
        let m = map(4, 8);
        let rp = ReplicationMap::new(m, 1);
        let pm = ParityMap::new(m, 1);
        for node in NodeId::all(4) {
            for page in m.pages_of(node) {
                assert_eq!(
                    rp.is_redundancy_page(page),
                    pm.is_parity_page(page),
                    "{page}"
                );
                if !pm.is_parity_page(page) {
                    let line = LineAddr(page.first_line().0 + 3);
                    let expanded = rp.expand_update(line, LineData::fill(9));
                    assert_eq!(expanded, vec![(pm.parity_line_of(line), LineData::fill(9))]);
                    assert!(rp.stores_values(page) && pm.is_mirrored_page(page));
                }
            }
        }
    }

    #[test]
    fn xor_backend_delegates_to_parity_map() {
        let m = map(8, 16);
        let pm = ParityMap::new(m, 3);
        let rdx = Redundancy::Xor(pm);
        assert_eq!(rdx.name(), "xor");
        assert_eq!(rdx.budget(), 1);
        assert_eq!(rdx.rebuild_fanin(), 3);
        assert_eq!(rdx.storage_overhead(), pm.storage_overhead());
        for node in NodeId::all(8) {
            for page in m.pages_of(node) {
                assert_eq!(rdx.is_redundancy_page(page), pm.is_parity_page(page));
                if !pm.is_parity_page(page) {
                    let line = LineAddr(page.first_line().0 + 1);
                    assert_eq!(
                        rdx.expand_update(line, LineData::fill(5)),
                        vec![(pm.parity_line_of(line), LineData::fill(5))]
                    );
                }
            }
        }
        // The budget matches ParityMap's pairwise chunk logic.
        assert!(rdx.overwhelmed_group(&[NodeId(1), NodeId(2)]).is_some());
        assert_eq!(rdx.overwhelmed_group(&[NodeId(1), NodeId(5)]), None);
    }

    #[test]
    fn budgets_classify_losses_per_backend() {
        // 12 nodes: XOR chunks of 4 (G=3), P+Q chunks of 4 (G=2),
        // replication chunks of 4 (k=3).
        let m = map(12, 8);
        let xor = Redundancy::Xor(ParityMap::new(m, 3));
        let dp = Redundancy::Double(DoubleParityMap::new(m, 2));
        let rp = Redundancy::Replication(ReplicationMap::new(m, 3));
        let two = [NodeId(1), NodeId(2)];
        let three = [NodeId(0), NodeId(1), NodeId(3)];
        let four = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let cross = [NodeId(1), NodeId(5), NodeId(9)];
        assert!(xor.overwhelmed_group(&two).is_some());
        assert!(dp.overwhelmed_group(&two).is_none());
        assert!(rp.overwhelmed_group(&two).is_none());
        assert!(dp.overwhelmed_group(&three).is_some());
        assert!(rp.overwhelmed_group(&three).is_none());
        assert!(rp.overwhelmed_group(&four).is_some());
        for rdx in [&xor, &dp, &rp] {
            assert!(rdx.overwhelmed_group(&cross).is_none(), "{}", rdx.name());
            // Duplicates count once.
            assert!(rdx.overwhelmed_group(&[NodeId(7), NodeId(7)]).is_none());
        }
        // An overwhelmed group names the chunk that was overrun.
        let g = dp.overwhelmed_group(&three).unwrap();
        assert!(g
            .data
            .iter()
            .chain(g.redundancy.iter())
            .all(|p| m.home_of_page(*p).index() < 4));
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn double_parity_chunk_must_divide_nodes() {
        let _ = DoubleParityMap::new(map(9, 4), 3); // chunk 5 does not divide 9
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn replication_chunk_must_divide_nodes() {
        let _ = ReplicationMap::new(map(9, 4), 3); // chunk 4 does not divide 9
    }
}
