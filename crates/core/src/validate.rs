//! Recovery-correctness validation.
//!
//! ReVive's correctness claim (Section 5.1) is that after rollback the
//! machine's memory is *exactly* the state at the recovered checkpoint —
//! value-for-value, not just structurally. This module supplies the three
//! independent oracles the differential harness in `revive-machine` checks
//! against:
//!
//! * [`ShadowLog`] — a software replica of one node's [`MemLog`] bookkeeping
//!   *and contents*, fed the same appends/markers/reclaims. Round-tripping
//!   [`MemLog::scan`] and [`MemLog::rollback_entries`] against it catches
//!   lost, phantom, or corrupted undo records (including in a log that was
//!   itself reconstructed from parity after a node loss).
//! * [`audit_parity`] — a full sweep of every parity group through
//!   [`ParityMap::check_group`], attributing each violation to its stripe
//!   and parity home.
//! * [`MemoryImage`] — a functional snapshot of memory keyed by *virtual*
//!   page, with word-exact [`MemoryImage::diff`], used to compare a golden
//!   (fault-free) run against an injected-and-recovered run.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;

use revive_mem::addr::{LineAddr, PageAddr};
use revive_mem::line::LineData;
use revive_sim::types::NodeId;

use crate::log::{RecordKind, ReplayEntry, ScannedRecord, RECORD_LINES};
use crate::parity::ParityMap;
use crate::redundancy::{Redundancy, RedundancyBackend};

/// One record as the shadow believes it exists in log memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShadowRecord {
    /// Entry (with the logged line) or checkpoint marker.
    pub kind: RecordKind,
    /// Checkpoint interval the record was created in.
    pub interval: u64,
    /// Global append order.
    pub seq: u64,
    /// The saved pre-image (zero for markers).
    pub data: LineData,
}

/// Where a scanned or replayed log diverged from the shadow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogDivergence {
    /// The shadow expects this record but the log no longer yields it.
    Lost {
        /// Sequence number of the missing record.
        seq: u64,
    },
    /// The log yielded a record the shadow never saw appended.
    Phantom {
        /// Sequence number of the unexpected record.
        seq: u64,
    },
    /// Both sides have the record but disagree on a field.
    Mismatch {
        /// Sequence number of the diverging record.
        seq: u64,
        /// Which field disagrees.
        field: &'static str,
    },
}

impl fmt::Display for LogDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogDivergence::Lost { seq } => write!(f, "record seq {seq} lost"),
            LogDivergence::Phantom { seq } => write!(f, "phantom record seq {seq}"),
            LogDivergence::Mismatch { seq, field } => {
                write!(f, "record seq {seq} diverges on {field}")
            }
        }
    }
}

/// A software replica of one node's [`MemLog`](crate::log::MemLog).
///
/// The shadow mirrors the *physical* behavior of the memory log: a slot
/// array indexed by record position, where reclamation only moves pointers
/// (a reclaimed record stays scannable until its slot is overwritten) and
/// [`reset`](ShadowLog::reset) models the post-rollback scrub that zeroes
/// the log region.
#[derive(Clone, Debug)]
pub struct ShadowLog {
    capacity: usize,
    /// Physical record slots; `None` until first written (or after reset).
    slots: Vec<Option<ShadowRecord>>,
    /// `(seq, interval)` of live records, oldest first.
    records: VecDeque<(u64, u64)>,
    tail: usize,
    seq: u64,
}

impl ShadowLog {
    /// Creates a shadow for a log holding `capacity_records` records.
    pub fn new(capacity_records: usize) -> ShadowLog {
        ShadowLog {
            capacity: capacity_records,
            slots: vec![None; capacity_records],
            records: VecDeque::new(),
            tail: 0,
            seq: 0,
        }
    }

    fn push(&mut self, kind: RecordKind, interval: u64, data: LineData) {
        self.slots[self.tail] = Some(ShadowRecord {
            kind,
            interval,
            seq: self.seq,
            data,
        });
        self.records.push_back((self.seq, interval));
        self.seq += 1;
        self.tail = (self.tail + 1) % self.capacity;
    }

    /// Mirrors [`MemLog::append`](crate::log::MemLog::append).
    pub fn record_append(&mut self, interval: u64, line: LineAddr, old: LineData) {
        self.push(RecordKind::Entry { line }, interval, old);
    }

    /// Mirrors [`MemLog::mark_checkpoint`](crate::log::MemLog::mark_checkpoint).
    pub fn record_marker(&mut self, interval: u64) {
        self.push(RecordKind::CheckpointMarker, interval, LineData::ZERO);
    }

    /// Mirrors [`MemLog::reclaim_before`](crate::log::MemLog::reclaim_before):
    /// pointers move, slots keep their contents.
    pub fn reclaim_before(&mut self, interval: u64) {
        while let Some(&(_, rec_interval)) = self.records.front() {
            if rec_interval >= interval {
                break;
            }
            self.records.pop_front();
        }
    }

    /// Mirrors [`MemLog::reclaim_oldest_half`](crate::log::MemLog::reclaim_oldest_half).
    pub fn reclaim_oldest_half(&mut self) {
        let drop = self.records.len() / 2;
        for _ in 0..drop {
            self.records.pop_front();
        }
    }

    /// Models the post-rollback scrub + [`MemLog::reset`](crate::log::MemLog::reset):
    /// the machine zeroes the log region, so nothing remains scannable.
    pub fn reset(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.records.clear();
        self.tail = 0;
    }

    /// Every record physically present, `(physical slot index, record)`,
    /// sorted by sequence number — what an honest scan must yield.
    fn physical_records(&self) -> Vec<(usize, ShadowRecord)> {
        let mut out: Vec<(usize, ShadowRecord)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|r| (i, r)))
            .collect();
        out.sort_by_key(|(_, r)| r.seq);
        out
    }

    /// Checks a [`MemLog::scan`](crate::log::MemLog::scan) result against the
    /// shadow: every physically present record must appear exactly once with
    /// the right kind, interval, and slot — no lost, phantom, or reordered
    /// records.
    pub fn verify_scan(&self, scanned: &[ScannedRecord]) -> Vec<LogDivergence> {
        let expected = self.physical_records();
        let mut out = Vec::new();
        let mut e = expected.iter().peekable();
        let mut s = scanned.iter().peekable();
        loop {
            match (e.peek(), s.peek()) {
                (None, None) => break,
                (Some((_, er)), None) => {
                    out.push(LogDivergence::Lost { seq: er.seq });
                    e.next();
                }
                (None, Some(sr)) => {
                    out.push(LogDivergence::Phantom { seq: sr.seq });
                    s.next();
                }
                (Some((slot, er)), Some(sr)) => {
                    if er.seq < sr.seq {
                        out.push(LogDivergence::Lost { seq: er.seq });
                        e.next();
                    } else if sr.seq < er.seq {
                        out.push(LogDivergence::Phantom { seq: sr.seq });
                        s.next();
                    } else {
                        if sr.kind != er.kind {
                            out.push(LogDivergence::Mismatch {
                                seq: er.seq,
                                field: "kind",
                            });
                        } else if sr.interval != er.interval {
                            out.push(LogDivergence::Mismatch {
                                seq: er.seq,
                                field: "interval",
                            });
                        } else if sr.data_slot != slot * RECORD_LINES {
                            out.push(LogDivergence::Mismatch {
                                seq: er.seq,
                                field: "slot",
                            });
                        }
                        e.next();
                        s.next();
                    }
                }
            }
        }
        out
    }

    /// Checks a [`MemLog::rollback_entries`](crate::log::MemLog::rollback_entries)
    /// result for `target_interval` against the shadow: the replay stream
    /// must contain exactly the pre-images of every physically present entry
    /// with `interval >= target_interval`, newest first, byte-for-byte.
    pub fn verify_rollback(
        &self,
        target_interval: u64,
        entries: &[ReplayEntry],
    ) -> Vec<LogDivergence> {
        let mut expected: Vec<(LineAddr, ShadowRecord)> = self
            .physical_records()
            .into_iter()
            .filter_map(|(_, r)| match r.kind {
                RecordKind::Entry { line } if r.interval >= target_interval => Some((line, r)),
                _ => None,
            })
            .collect();
        expected.sort_by_key(|(_, r)| std::cmp::Reverse(r.seq));
        let mut out = Vec::new();
        for i in 0..expected.len().max(entries.len()) {
            match (expected.get(i), entries.get(i)) {
                (Some((_, er)), None) => out.push(LogDivergence::Lost { seq: er.seq }),
                (None, Some(en)) => out.push(LogDivergence::Phantom { seq: en.seq }),
                (Some((line, er)), Some(en)) => {
                    if en.seq != er.seq {
                        out.push(LogDivergence::Mismatch {
                            seq: er.seq,
                            field: "seq order",
                        });
                    } else if en.line != *line {
                        out.push(LogDivergence::Mismatch {
                            seq: er.seq,
                            field: "line",
                        });
                    } else if en.data != er.data {
                        out.push(LogDivergence::Mismatch {
                            seq: er.seq,
                            field: "data",
                        });
                    }
                }
                (None, None) => unreachable!(),
            }
        }
        out
    }
}

/// One parity group whose XOR invariant does not hold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParityViolation {
    /// The group's parity page.
    pub parity_page: PageAddr,
    /// The stripe (local page index) of the group.
    pub stripe: u64,
    /// The node homing the parity page.
    pub node: NodeId,
    /// First violating line offset within the page.
    pub offset: usize,
}

impl fmt::Display for ParityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "group of {} (stripe {} on {}) violated at line offset {}",
            self.parity_page, self.stripe, self.node, self.offset
        )
    }
}

/// The result of a full parity sweep.
#[derive(Clone, Debug, Default)]
pub struct ParityAudit {
    /// Groups checked (one per parity page in the machine).
    pub groups_checked: u64,
    /// Groups whose XOR invariant failed.
    pub violations: Vec<ParityViolation>,
}

impl ParityAudit {
    /// Whether every group satisfied the invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Sweeps **every** parity group in the machine, reading lines through
/// `read`, and reports each group whose XOR invariant fails with its stripe
/// and parity-home node. Each group is visited exactly once (via its parity
/// page).
pub fn audit_parity<F>(parity: &ParityMap, read: F) -> ParityAudit
where
    F: FnMut(LineAddr) -> LineData,
{
    audit_redundancy(&Redundancy::Xor(*parity), read)
}

/// Sweeps every redundancy group of the active backend, reading lines
/// through `read`, and reports each group whose invariant fails with its
/// stripe and redundancy-home node. Each group is visited exactly once, via
/// its first redundancy page (the parity page for XOR, P for P+Q, the
/// first replica for replication); that page is reported as the
/// violation's `parity_page`.
pub fn audit_redundancy<F>(rdx: &Redundancy, mut read: F) -> ParityAudit
where
    F: FnMut(LineAddr) -> LineData,
{
    let map = *rdx.address_map();
    let mut audit = ParityAudit::default();
    for node in NodeId::all(map.nodes()) {
        for page in map.pages_of(node) {
            if !rdx.is_redundancy_page(page) || rdx.group_of(page).redundancy[0] != page {
                continue;
            }
            audit.groups_checked += 1;
            if let Some(offset) = rdx.check_group(page, &mut read) {
                audit.violations.push(ParityViolation {
                    parity_page: page,
                    stripe: map.local_page_index(page),
                    node,
                    offset,
                });
            }
        }
    }
    audit
}

/// A functional snapshot of application memory keyed by *virtual* page.
///
/// Keying by virtual page makes the image placement-independent: two runs
/// that allocate the same virtual pages compare equal iff the application
/// data is identical, regardless of which physical frames first-touch
/// allocation happened to pick.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoryImage {
    /// Page contents by virtual page number.
    pub pages: BTreeMap<u64, Vec<u8>>,
}

/// One virtual page present in both images but with different contents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageMismatch {
    /// The virtual page number.
    pub vpage: u64,
    /// Byte offset of the first difference within the page.
    pub first_byte: usize,
}

/// The difference between two [`MemoryImage`]s.
#[derive(Clone, Debug, Default)]
pub struct MemoryDiff {
    /// Virtual pages present only in the left image.
    pub only_in_self: Vec<u64>,
    /// Virtual pages present only in the right image.
    pub only_in_other: Vec<u64>,
    /// Pages present in both but with differing bytes.
    pub mismatched: Vec<PageMismatch>,
}

impl MemoryDiff {
    /// Whether the two images were word-for-word identical.
    pub fn is_match(&self) -> bool {
        self.only_in_self.is_empty() && self.only_in_other.is_empty() && self.mismatched.is_empty()
    }
}

impl fmt::Display for MemoryDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_match() {
            return write!(f, "images identical");
        }
        write!(
            f,
            "{} pages only left, {} only right, {} mismatched",
            self.only_in_self.len(),
            self.only_in_other.len(),
            self.mismatched.len()
        )?;
        if let Some(m) = self.mismatched.first() {
            write!(f, " (first: vpage {:#x} at byte {})", m.vpage, m.first_byte)?;
        }
        Ok(())
    }
}

impl MemoryImage {
    /// Records the contents of one virtual page.
    pub fn insert_page(&mut self, vpage: u64, bytes: Vec<u8>) {
        self.pages.insert(vpage, bytes);
    }

    /// Word-exact comparison against another image.
    pub fn diff(&self, other: &MemoryImage) -> MemoryDiff {
        let mut d = MemoryDiff::default();
        for (&vpage, bytes) in &self.pages {
            match other.pages.get(&vpage) {
                None => d.only_in_self.push(vpage),
                Some(theirs) => {
                    if let Some(first_byte) =
                        bytes.iter().zip(theirs.iter()).position(|(a, b)| a != b)
                    {
                        d.mismatched.push(PageMismatch { vpage, first_byte });
                    } else if bytes.len() != theirs.len() {
                        d.mismatched.push(PageMismatch {
                            vpage,
                            first_byte: bytes.len().min(theirs.len()),
                        });
                    }
                }
            }
        }
        for &vpage in other.pages.keys() {
            if !self.pages.contains_key(&vpage) {
                d.only_in_other.push(vpage);
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::MemLog;
    use revive_coherence::port::{MemPort, VecPort};
    use revive_mem::addr::{AddressMap, PAGE_SIZE};

    fn setup(records: usize) -> (MemLog, ShadowLog, VecPort) {
        let slots: Vec<LineAddr> = (0..records * RECORD_LINES)
            .map(|i| LineAddr(1000 + i as u64))
            .collect();
        let port = VecPort::new(LineAddr(1000), records * RECORD_LINES);
        (MemLog::new(NodeId(0), slots), ShadowLog::new(records), port)
    }

    #[test]
    fn shadow_round_trips_scan_and_rollback() {
        let (mut log, mut shadow, mut mem) = setup(8);
        for i in 0..3u64 {
            let old = LineData::from_seed(i);
            log.append(0, LineAddr(10 + i), old, true, &mut mem);
            shadow.record_append(0, LineAddr(10 + i), old);
        }
        log.mark_checkpoint(1, true, &mut mem);
        shadow.record_marker(1);
        log.append(1, LineAddr(10), LineData::from_seed(9), true, &mut mem);
        shadow.record_append(1, LineAddr(10), LineData::from_seed(9));
        assert!(shadow.verify_scan(&log.scan(|l| mem.peek(l))).is_empty());
        assert!(shadow
            .verify_rollback(0, &log.rollback_entries(0, |l| mem.peek(l)))
            .is_empty());
        assert!(shadow
            .verify_rollback(1, &log.rollback_entries(1, |l| mem.peek(l)))
            .is_empty());
    }

    #[test]
    fn shadow_tracks_reclaim_and_wraparound() {
        let (mut log, mut shadow, mut mem) = setup(4);
        for i in 0..4u64 {
            log.append(i / 2, LineAddr(i), LineData::from_seed(i), true, &mut mem);
            shadow.record_append(i / 2, LineAddr(i), LineData::from_seed(i));
        }
        log.reclaim_before(1);
        shadow.reclaim_before(1);
        // Wrap: the freed slots are overwritten.
        for i in 4..6u64 {
            log.append(2, LineAddr(i), LineData::from_seed(i), true, &mut mem);
            shadow.record_append(2, LineAddr(i), LineData::from_seed(i));
        }
        assert!(shadow.verify_scan(&log.scan(|l| mem.peek(l))).is_empty());
        assert!(shadow
            .verify_rollback(1, &log.rollback_entries(1, |l| mem.peek(l)))
            .is_empty());
    }

    #[test]
    fn shadow_detects_corrupted_preimage() {
        let (mut log, mut shadow, mut mem) = setup(4);
        log.append(0, LineAddr(7), LineData::fill(0xAB), true, &mut mem);
        shadow.record_append(0, LineAddr(7), LineData::fill(0xAB));
        // Corrupt the data slot (first log line) behind the log's back.
        mem.write(LineAddr(1000), LineData::fill(0xEE));
        let div = shadow.verify_rollback(0, &log.rollback_entries(0, |l| mem.peek(l)));
        assert_eq!(
            div,
            vec![LogDivergence::Mismatch {
                seq: 0,
                field: "data"
            }]
        );
    }

    #[test]
    fn shadow_detects_lost_record() {
        let (mut log, mut shadow, mut mem) = setup(4);
        log.append(0, LineAddr(7), LineData::fill(1), true, &mut mem);
        shadow.record_append(0, LineAddr(7), LineData::fill(1));
        // Zero the metadata line: the record vanishes from scans.
        mem.write(LineAddr(1001), LineData::ZERO);
        let div = shadow.verify_scan(&log.scan(|l| mem.peek(l)));
        assert_eq!(div, vec![LogDivergence::Lost { seq: 0 }]);
    }

    #[test]
    fn shadow_reset_models_scrub() {
        let (mut log, mut shadow, mut mem) = setup(4);
        log.append(0, LineAddr(7), LineData::fill(1), true, &mut mem);
        shadow.record_append(0, LineAddr(7), LineData::fill(1));
        // Scrub: zero the log region, reset both.
        for l in log.slot_lines().to_vec() {
            mem.write(l, LineData::ZERO);
        }
        log.reset();
        shadow.reset();
        assert!(shadow.verify_scan(&log.scan(|l| mem.peek(l))).is_empty());
    }

    #[test]
    fn parity_audit_attributes_violations() {
        let map = AddressMap::new(4, 4 * PAGE_SIZE as u64);
        let parity = ParityMap::new(map, 3);
        let clean = audit_parity(&parity, |_| LineData::ZERO);
        assert!(clean.is_clean());
        assert_eq!(clean.groups_checked, 4); // one group per stripe
        let bad_line = map
            .pages_of(NodeId(1))
            .find(|&p| !parity.is_parity_page(p))
            .map(|p| LineAddr(p.first_line().0 + 3))
            .unwrap();
        let audit = audit_parity(&parity, |l| {
            if l == bad_line {
                LineData::fill(1)
            } else {
                LineData::ZERO
            }
        });
        assert_eq!(audit.violations.len(), 1);
        let v = audit.violations[0];
        assert_eq!(v.offset, 3);
        assert_eq!(v.parity_page, parity.parity_page_of(bad_line.page()));
        assert_eq!(v.stripe, parity.stripe_of(bad_line.page()));
    }

    #[test]
    fn memory_image_diff_finds_first_divergence() {
        let mut a = MemoryImage::default();
        let mut b = MemoryImage::default();
        a.insert_page(1, vec![0u8; 64]);
        b.insert_page(1, vec![0u8; 64]);
        a.insert_page(2, vec![1u8; 64]);
        let mut changed = vec![1u8; 64];
        changed[17] = 9;
        b.insert_page(2, changed);
        a.insert_page(3, vec![0u8; 64]);
        b.insert_page(4, vec![0u8; 64]);
        let d = a.diff(&b);
        assert!(!d.is_match());
        assert_eq!(d.only_in_self, vec![3]);
        assert_eq!(d.only_in_other, vec![4]);
        assert_eq!(
            d.mismatched,
            vec![PageMismatch {
                vpage: 2,
                first_byte: 17
            }]
        );
        assert!(a.diff(&a).is_match());
    }
}
