//! Distributed N+1 parity (Section 3.2.1 of the paper).
//!
//! Memory pages are organized into parity groups of `G` data pages plus one
//! parity page, each page on a *different* node, with parity pages
//! distributed evenly across the system (Figure 3). The node count must be
//! a multiple of the group size `G + 1` (Section 6.2), which also makes the
//! parity-home computation a trivial modulo.
//!
//! Layout: nodes are partitioned into *chunks* of `G + 1` consecutive nodes.
//! For stripe `s` (the pages at local page index `s` on every node of a
//! chunk), the page on the node at chunk position `s mod (G + 1)` is the
//! parity page; the other `G` pages are its data pages. Every node therefore
//! dedicates exactly `1/(G+1)` of its memory to parity — 12.5 % for the
//! paper's 7+1 configuration, 50 % for mirroring (`G = 1`).
//!
//! The invariant maintained by the ReVive hardware, and checked by this
//! crate's tests, is: for every line offset within every group,
//! `data₀ ^ … ^ data_{G-1} ^ parity == 0`.

use revive_mem::addr::{AddressMap, LineAddr, PageAddr};
use revive_mem::line::LineData;
use revive_sim::types::NodeId;

/// The parity-group geometry of the machine.
///
/// # Example
///
/// ```
/// use revive_core::parity::ParityMap;
/// use revive_mem::addr::{AddressMap, PageAddr};
///
/// // 16 nodes, 7+1 parity: 12.5% of memory is parity.
/// let map = AddressMap::new(16, 64 * 4096);
/// let parity = ParityMap::new(map, 7);
/// assert_eq!(parity.storage_overhead(), 0.125);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ParityMap {
    map: AddressMap,
    group_data_pages: usize,
    /// Stripes `[0, mirrored_stripes)` use 1+1 mirroring; the rest use
    /// `group_data_pages`+1 parity (the paper's Section 8 extension:
    /// "mirroring support for the most frequently accessed pages and N+1
    /// parity for all other pages").
    mirrored_stripes: u64,
}

impl ParityMap {
    /// Creates a parity map with `group_data_pages` data pages per group
    /// (`1` selects mirroring).
    ///
    /// # Panics
    ///
    /// Panics if `group_data_pages` is zero or the node count is not a
    /// multiple of `group_data_pages + 1`.
    pub fn new(map: AddressMap, group_data_pages: usize) -> ParityMap {
        ParityMap::mixed(map, group_data_pages, 0)
    }

    /// Creates a *mixed* layout: the lowest `mirrored_stripes` local page
    /// indices are mirrored (1+1), everything above uses
    /// `group_data_pages`+1 parity (the paper's Section 8 extension:
    /// "mirroring support for the most frequently accessed pages and N+1
    /// parity for all other pages"). The machine's first-touch allocator
    /// hands out low pages first, which approximates the paper's "careful
    /// allocation of frequently used pages into the mirrored region".
    ///
    /// # Panics
    ///
    /// Panics if `group_data_pages` is zero, the node count is not a
    /// multiple of both chunk sizes, or `mirrored_stripes` exceeds the
    /// node's page count.
    pub fn mixed(map: AddressMap, group_data_pages: usize, mirrored_stripes: u64) -> ParityMap {
        assert!(group_data_pages > 0, "parity group needs data pages");
        let chunk = group_data_pages + 1;
        assert!(
            map.nodes().is_multiple_of(chunk),
            "node count {} is not a multiple of the parity group size {}",
            map.nodes(),
            chunk
        );
        if mirrored_stripes > 0 {
            assert!(
                map.nodes().is_multiple_of(2),
                "mirroring pairs nodes; node count {} is odd",
                map.nodes()
            );
            assert!(
                mirrored_stripes <= map.pages_per_node(),
                "mirrored stripes exceed the node's pages"
            );
        }
        ParityMap {
            map,
            group_data_pages,
            mirrored_stripes,
        }
    }

    /// The address map this parity layout covers.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Data pages per group (`G`).
    pub fn group_data_pages(&self) -> usize {
        self.group_data_pages
    }

    /// Nodes per chunk (`G + 1`) of the parity region.
    pub fn chunk_size(&self) -> usize {
        self.group_data_pages + 1
    }

    /// Nodes per chunk for a given stripe (2 in the mirrored region).
    fn chunk_size_at(&self, stripe: u64) -> usize {
        if stripe < self.mirrored_stripes {
            2
        } else {
            self.group_data_pages + 1
        }
    }

    /// Whether this layout is mirroring everywhere (`G = 1`).
    pub fn is_mirroring(&self) -> bool {
        self.group_data_pages == 1
    }

    /// Whether `page`'s stripe belongs to the mirrored region (always true
    /// under full mirroring).
    pub fn is_mirrored_page(&self, page: PageAddr) -> bool {
        self.is_mirroring() || self.stripe_of(page) < self.mirrored_stripes
    }

    /// Number of mirrored stripes (0 unless the mixed layout is used).
    pub fn mirrored_stripes(&self) -> u64 {
        self.mirrored_stripes
    }

    /// Fraction of memory consumed by parity/mirror pages: `1/(G+1)` for a
    /// uniform layout, the stripe-weighted blend for a mixed one.
    pub fn storage_overhead(&self) -> f64 {
        let total = self.map.pages_per_node() as f64;
        let mirrored = self.mirrored_stripes as f64;
        (mirrored / 2.0 + (total - mirrored) / self.chunk_size() as f64) / total
    }

    fn chunk_of(&self, node: NodeId, stripe: u64) -> usize {
        node.index() / self.chunk_size_at(stripe)
    }

    fn pos_in_chunk(&self, node: NodeId, stripe: u64) -> usize {
        node.index() % self.chunk_size_at(stripe)
    }

    /// The stripe (local page index) of a page.
    pub fn stripe_of(&self, page: PageAddr) -> u64 {
        self.map.local_page_index(page)
    }

    /// Whether `page` is a parity page under this layout.
    pub fn is_parity_page(&self, page: PageAddr) -> bool {
        let node = self.map.home_of_page(page);
        let stripe = self.stripe_of(page);
        stripe % self.chunk_size_at(stripe) as u64 == self.pos_in_chunk(node, stripe) as u64
    }

    /// The node holding the parity page for stripe `stripe` of the chunk
    /// containing `node`.
    fn parity_node(&self, node: NodeId, stripe: u64) -> NodeId {
        let chunk = self.chunk_size_at(stripe);
        let chunk_start = self.chunk_of(node, stripe) * chunk;
        NodeId::from(chunk_start + (stripe % chunk as u64) as usize)
    }

    /// The parity page protecting a data page.
    ///
    /// # Panics
    ///
    /// Panics if `page` is itself a parity page.
    pub fn parity_page_of(&self, page: PageAddr) -> PageAddr {
        self.try_parity_page_of(page)
            .unwrap_or_else(|| panic!("{page} is a parity page, it has no parity of its own"))
    }

    /// Non-panicking [`ParityMap::parity_page_of`]: `None` when `page` is
    /// itself a parity page.
    pub fn try_parity_page_of(&self, page: PageAddr) -> Option<PageAddr> {
        if self.is_parity_page(page) {
            return None;
        }
        let node = self.map.home_of_page(page);
        let stripe = self.stripe_of(page);
        Some(self.map.global_page(self.parity_node(node, stripe), stripe))
    }

    /// The parity line protecting a data line (same offset within the page).
    ///
    /// # Panics
    ///
    /// Panics if the line lives in a parity page.
    pub fn parity_line_of(&self, line: LineAddr) -> LineAddr {
        let ppage = self.parity_page_of(line.page());
        LineAddr(ppage.first_line().0 + line.index_in_page() as u64)
    }

    /// The `G` data pages protected by a parity page.
    ///
    /// # Panics
    ///
    /// Panics if `parity` is not a parity page.
    pub fn data_pages_of(&self, parity: PageAddr) -> Vec<PageAddr> {
        self.try_data_pages_of(parity)
            .unwrap_or_else(|| panic!("{parity} is not a parity page"))
    }

    /// Non-panicking [`ParityMap::data_pages_of`]: `None` when `parity` is
    /// not a parity page.
    pub fn try_data_pages_of(&self, parity: PageAddr) -> Option<Vec<PageAddr>> {
        if !self.is_parity_page(parity) {
            return None;
        }
        let node = self.map.home_of_page(parity);
        let stripe = self.stripe_of(parity);
        let chunk = self.chunk_size_at(stripe);
        let chunk_start = self.chunk_of(node, stripe) * chunk;
        Some(
            (chunk_start..chunk_start + chunk)
                .map(NodeId::from)
                .filter(|&n| n != node)
                .map(|n| self.map.global_page(n, stripe))
                .collect(),
        )
    }

    /// N+1 parity reconstructs at most one missing member per group. When
    /// `lost` nodes fail *simultaneously*, any group with two or more member
    /// pages on lost nodes is unrecoverable; this returns the first such
    /// group, or `None` when the loss is within the parity budget. Groups
    /// never span chunks, so two lost nodes overwhelm a group iff they share
    /// a chunk at some stripe (in a mixed layout the mirrored and parity
    /// regions chunk differently, so every stripe is checked).
    pub fn overwhelmed_group(&self, lost: &[NodeId]) -> Option<ParityGroup> {
        for (i, &a) in lost.iter().enumerate() {
            for &b in &lost[i + 1..] {
                if a == b {
                    continue;
                }
                for stripe in 0..self.map.pages_per_node() {
                    if self.chunk_of(a, stripe) == self.chunk_of(b, stripe) {
                        return Some(self.group_of(self.map.global_page(a, stripe)));
                    }
                }
            }
        }
        None
    }

    /// The full group (data pages + parity page) containing `page`.
    pub fn group_of(&self, page: PageAddr) -> ParityGroup {
        let parity = if self.is_parity_page(page) {
            page
        } else {
            self.parity_page_of(page)
        };
        ParityGroup {
            data: self.data_pages_of(parity),
            parity,
        }
    }

    /// Every parity group that has a member page homed on `node` — the
    /// groups rendered inaccessible when `node` is lost (Section 3.2.4:
    /// `M × N` megabytes of data plus `M` of parity become unavailable).
    pub fn groups_touching(&self, node: NodeId) -> Vec<ParityGroup> {
        self.map.pages_of(node).map(|p| self.group_of(p)).collect()
    }

    /// Checks the parity invariant for the group containing `page`, reading
    /// lines through `read`. Returns the first violating line offset, if
    /// any.
    pub fn check_group<F>(&self, page: PageAddr, mut read: F) -> Option<usize>
    where
        F: FnMut(LineAddr) -> LineData,
    {
        let group = self.group_of(page);
        for offset in 0..revive_mem::addr::LINES_PER_PAGE {
            let mut acc = read(LineAddr(group.parity.first_line().0 + offset as u64));
            for dp in &group.data {
                acc ^= read(LineAddr(dp.first_line().0 + offset as u64));
            }
            if !acc.is_zero() {
                return Some(offset);
            }
        }
        None
    }
}

/// One parity group: `G` data pages and their parity page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParityGroup {
    /// The data pages (each on a different node).
    pub data: Vec<PageAddr>,
    /// The parity page (on yet another node).
    pub parity: PageAddr,
}

/// A parity-update message: XOR deltas to apply at the parity home
/// (Figure 4's `U = D ^ D'`). One message may carry the deltas of a log
/// entry's adjacent lines when they share a parity home.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParityUpdate {
    /// The protected line whose directory entry is Busy awaiting this
    /// update's acknowledgment; `None` for fire-and-forget updates (e.g.
    /// checkpoint-commit markers).
    pub ack_to_line: Option<LineAddr>,
    /// `(parity line, delta)` pairs to XOR in at the destination.
    pub deltas: Vec<(LineAddr, LineData)>,
}

impl ParityUpdate {
    /// Wire size: header plus one line payload per delta.
    pub fn size_bytes(&self) -> u32 {
        8 + 64 * self.deltas.len() as u32
    }
}

/// Acknowledgment of a [`ParityUpdate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParityAck {
    /// The protected line whose directory entry awaits this ack.
    pub ack_to_line: LineAddr,
}

impl ParityAck {
    /// Wire size (control message).
    pub fn size_bytes(&self) -> u32 {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revive_mem::addr::PAGE_SIZE;

    fn setup(nodes: usize, pages_per_node: u64, g: usize) -> ParityMap {
        let map = AddressMap::new(nodes, pages_per_node * PAGE_SIZE as u64);
        ParityMap::new(map, g)
    }

    #[test]
    fn storage_overhead_matches_paper() {
        assert_eq!(setup(16, 16, 7).storage_overhead(), 0.125);
        assert_eq!(setup(16, 16, 1).storage_overhead(), 0.5);
        assert!(setup(16, 16, 1).is_mirroring());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn group_size_must_divide_nodes() {
        let _ = setup(16, 16, 4); // chunk 5 does not divide 16
    }

    #[test]
    fn every_page_is_data_or_parity_consistently() {
        let pm = setup(8, 16, 3); // chunks of 4
        let map = *pm.address_map();
        let mut data = 0;
        let mut parity = 0;
        for node in NodeId::all(8) {
            for page in map.pages_of(node) {
                if pm.is_parity_page(page) {
                    parity += 1;
                    // Its data pages must all be non-parity and in distinct
                    // nodes of the same chunk.
                    let dps = pm.data_pages_of(page);
                    assert_eq!(dps.len(), 3);
                    for dp in &dps {
                        assert!(!pm.is_parity_page(*dp));
                        assert_eq!(pm.parity_page_of(*dp), page);
                    }
                    let mut nodes: Vec<usize> =
                        dps.iter().map(|p| map.home_of_page(*p).index()).collect();
                    nodes.push(map.home_of_page(page).index());
                    nodes.sort_unstable();
                    nodes.dedup();
                    assert_eq!(nodes.len(), 4, "group spans distinct nodes");
                } else {
                    data += 1;
                }
            }
        }
        // 1/4 of pages are parity.
        assert_eq!(parity * 3, data);
    }

    #[test]
    fn parity_is_distributed_evenly() {
        let pm = setup(16, 64, 7);
        let map = *pm.address_map();
        for node in NodeId::all(16) {
            let n_parity = map.pages_of(node).filter(|&p| pm.is_parity_page(p)).count();
            assert_eq!(n_parity, 8, "each node holds 1/8 of its pages as parity");
        }
    }

    #[test]
    fn parity_line_shares_page_offset() {
        let pm = setup(8, 16, 3);
        let map = *pm.address_map();
        // Find some data page and check line mapping.
        let page = map
            .pages_of(NodeId(1))
            .find(|&p| !pm.is_parity_page(p))
            .unwrap();
        let line = LineAddr(page.first_line().0 + 5);
        let pline = pm.parity_line_of(line);
        assert_eq!(pline.index_in_page(), 5);
        assert_eq!(pline.page(), pm.parity_page_of(page));
    }

    #[test]
    fn mirroring_pairs_nodes() {
        let pm = setup(4, 8, 1); // chunks of 2: (0,1), (2,3)
        let map = *pm.address_map();
        for page in map.pages_of(NodeId(0)) {
            if !pm.is_parity_page(page) {
                let mirror = pm.parity_page_of(page);
                assert_eq!(map.home_of_page(mirror), NodeId(1));
                assert_eq!(pm.data_pages_of(mirror), vec![page]);
            }
        }
    }

    #[test]
    fn group_of_round_trips() {
        let pm = setup(8, 16, 3);
        let map = *pm.address_map();
        let page = map
            .pages_of(NodeId(2))
            .find(|&p| !pm.is_parity_page(p))
            .unwrap();
        let g = pm.group_of(page);
        assert!(g.data.contains(&page));
        assert_eq!(pm.group_of(g.parity), g);
    }

    #[test]
    fn groups_touching_covers_whole_node() {
        let pm = setup(8, 16, 3);
        let groups = pm.groups_touching(NodeId(3));
        assert_eq!(groups.len(), 16); // one group per local page
    }

    #[test]
    fn check_group_detects_violations() {
        let pm = setup(4, 4, 1);
        let map = *pm.address_map();
        let page = map
            .pages_of(NodeId(0))
            .find(|&p| !pm.is_parity_page(p))
            .unwrap();
        // All-zero memory satisfies the invariant.
        assert_eq!(pm.check_group(page, |_| LineData::ZERO), None);
        // Corrupt one line.
        let bad = LineAddr(page.first_line().0 + 3);
        let violation = pm.check_group(page, |l| {
            if l == bad {
                LineData::fill(1)
            } else {
                LineData::ZERO
            }
        });
        assert_eq!(violation, Some(3));
    }

    #[test]
    fn mixed_layout_blends_modes() {
        let map = AddressMap::new(8, 16 * PAGE_SIZE as u64);
        let pm = ParityMap::mixed(map, 3, 4); // 4 mirrored stripes of 16
        assert_eq!(pm.mirrored_stripes(), 4);
        assert!(!pm.is_mirroring());
        // Low stripes are mirrored: their groups have exactly one data page.
        let low = map.global_page(NodeId(1), 0); // stripe 0, pos 1 (chunk 2) => data
        assert!(pm.is_mirrored_page(low));
        assert!(!pm.is_parity_page(low));
        let mirror = pm.parity_page_of(low);
        assert_eq!(pm.data_pages_of(mirror), vec![low]);
        // High stripes use 3+1 parity.
        let high = map.global_page(NodeId(1), 5);
        assert!(!pm.is_mirrored_page(high));
        if !pm.is_parity_page(high) {
            assert_eq!(pm.data_pages_of(pm.parity_page_of(high)).len(), 3);
        }
        // Storage overhead interpolates between 1/2 and 1/4.
        let expected = (4.0 / 2.0 + 12.0 / 4.0) / 16.0;
        assert!((pm.storage_overhead() - expected).abs() < 1e-12);
    }

    #[test]
    fn mixed_zero_stripes_equals_plain_parity() {
        let a = setup(8, 16, 3);
        let map = AddressMap::new(8, 16 * PAGE_SIZE as u64);
        let b = ParityMap::mixed(map, 3, 0);
        for node in NodeId::all(8) {
            for page in map.pages_of(node) {
                assert_eq!(a.is_parity_page(page), b.is_parity_page(page));
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceed the node's pages")]
    fn mixed_stripe_bound_checked() {
        let map = AddressMap::new(8, 4 * PAGE_SIZE as u64);
        let _ = ParityMap::mixed(map, 3, 5);
    }

    #[test]
    fn try_variants_refuse_instead_of_panicking() {
        let pm = setup(8, 16, 3);
        let map = *pm.address_map();
        let data = map
            .pages_of(NodeId(1))
            .find(|&p| !pm.is_parity_page(p))
            .unwrap();
        let parity = pm.parity_page_of(data);
        assert_eq!(pm.try_parity_page_of(data), Some(parity));
        assert_eq!(pm.try_parity_page_of(parity), None);
        assert_eq!(pm.try_data_pages_of(parity), Some(pm.data_pages_of(parity)));
        assert_eq!(pm.try_data_pages_of(data), None);
    }

    #[test]
    fn budget_allows_cross_chunk_losses_only() {
        // 8 nodes, 3+1 parity: chunks {0..3} and {4..7}.
        let pm = setup(8, 16, 3);
        assert_eq!(pm.overwhelmed_group(&[]), None);
        assert_eq!(pm.overwhelmed_group(&[NodeId(2)]), None);
        // Different chunks: every group loses at most one member.
        assert_eq!(pm.overwhelmed_group(&[NodeId(1), NodeId(5)]), None);
        // Same chunk: some group loses two members.
        let g = pm.overwhelmed_group(&[NodeId(1), NodeId(2)]).unwrap();
        let map = *pm.address_map();
        let lost_members = std::iter::once(g.parity)
            .chain(g.data.iter().copied())
            .filter(|&p| matches!(map.home_of_page(p), NodeId(1) | NodeId(2)))
            .count();
        assert_eq!(lost_members, 2);
        // Duplicate entries are one loss, not two.
        assert_eq!(pm.overwhelmed_group(&[NodeId(3), NodeId(3)]), None);
    }

    #[test]
    fn budget_respects_mixed_layout_chunking() {
        // Mirrored stripes pair nodes (0,1)(2,3)...; the parity region
        // chunks {0..3}{4..7}. Nodes 1 and 2 share a parity-region chunk but
        // no mirror pair; nodes 0 and 1 share both.
        let map = AddressMap::new(8, 16 * PAGE_SIZE as u64);
        let pm = ParityMap::mixed(map, 3, 4);
        assert!(pm.overwhelmed_group(&[NodeId(1), NodeId(2)]).is_some());
        assert!(pm.overwhelmed_group(&[NodeId(0), NodeId(1)]).is_some());
        assert_eq!(pm.overwhelmed_group(&[NodeId(1), NodeId(6)]), None);
    }

    #[test]
    fn update_message_sizes() {
        let u = ParityUpdate {
            ack_to_line: Some(LineAddr(1)),
            deltas: vec![(LineAddr(2), LineData::ZERO), (LineAddr(3), LineData::ZERO)],
        };
        assert_eq!(u.size_bytes(), 8 + 128);
        assert_eq!(
            ParityAck {
                ack_to_line: LineAddr(1)
            }
            .size_bytes(),
            8
        );
    }
}
