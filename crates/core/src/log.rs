//! The memory-resident log (Section 3.2.2 of the paper).
//!
//! Before a home-memory line is overwritten for the first time after a
//! checkpoint, its previous (checkpoint) contents are copied to a log in the
//! *same node's* memory. The log region is itself parity-protected, so a
//! lost node's log can be reconstructed from the other nodes.
//!
//! ## On-memory format
//!
//! The log is a circular buffer of two-line *records*:
//!
//! * slot `2k`   — the saved line contents (or zero for markers);
//! * slot `2k+1` — the metadata line: a magic word, the logged line's global
//!   address, the checkpoint interval, a sequence number, and a checksum.
//!
//! The metadata line doubles as the paper's *Marker* (Section 4.2, "Atomic
//! Log Update Race"): it is written **after** the data line, so a record
//! without a valid metadata line is an incomplete append and is ignored by
//! recovery. Recovery never trusts the in-struct bookkeeping: it *scans* the
//! log memory for valid markers (this is what makes the log of a lost,
//! parity-reconstructed node usable — the pointers died with the node).
//!
//! Replaying in reverse sequence order makes redundant log entries (possible
//! when L bits are kept in a lossy directory cache, Section 4.1.2) harmless:
//! the oldest entry — the true checkpoint value — is applied last.

use revive_coherence::port::MemPort;
use revive_mem::addr::{LineAddr, LINE_SIZE};
use revive_mem::line::LineData;
use revive_sim::types::NodeId;

/// Lines per log record (data line + metadata line).
pub const RECORD_LINES: usize = 2;

/// Magic word identifying a valid data-entry metadata line.
const MAGIC_ENTRY: u64 = 0x5265_5669_7665_4C47; // "ReViveLG"
/// Magic word identifying a checkpoint-commit marker.
const MAGIC_CKPT: u64 = 0x5265_5669_7665_434B; // "ReViveCK"

/// What a scanned metadata line describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A saved pre-image of a memory line.
    Entry {
        /// The global line whose checkpoint contents were saved.
        line: LineAddr,
    },
    /// A checkpoint-commit marker (two-phase commit, Section 4.2).
    CheckpointMarker,
}

/// A record found by scanning the log memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScannedRecord {
    /// What the record is.
    pub kind: RecordKind,
    /// The checkpoint interval the record was created in.
    pub interval: u64,
    /// Global append order.
    pub seq: u64,
    /// The log slot index of the record's data line.
    pub data_slot: usize,
}

/// A log entry ready to be replayed into memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayEntry {
    /// The memory line to restore.
    pub line: LineAddr,
    /// Its checkpoint contents.
    pub data: LineData,
    /// Global append order (replay applies in descending order).
    pub seq: u64,
}

/// Log statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct LogStats {
    /// Data entries appended.
    pub appends: u64,
    /// Checkpoint markers written.
    pub markers: u64,
    /// High-water mark of live log bytes.
    pub high_water_bytes: u64,
    /// Records dropped by reclamation.
    pub reclaimed: u64,
}

/// The per-node memory log (see module docs).
///
/// The struct holds bookkeeping (pointers, statistics); the *contents* live
/// in node memory, written through the [`MemPort`] passed to each operation.
#[derive(Clone, Debug)]
pub struct MemLog {
    node: NodeId,
    slots: Vec<LineAddr>,
    head: usize,
    tail: usize,
    live_records: usize,
    /// `(seq, interval)` of live records in append order, for reclamation.
    records: std::collections::VecDeque<(u64, u64)>,
    seq: u64,
    stats: LogStats,
}

impl MemLog {
    /// Creates a log over the given memory lines (the node's log region, in
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two records fit or the slot count is odd.
    pub fn new(node: NodeId, slots: Vec<LineAddr>) -> MemLog {
        assert!(
            slots.len() >= 2 * RECORD_LINES,
            "log region too small ({} lines)",
            slots.len()
        );
        assert!(
            slots.len().is_multiple_of(RECORD_LINES),
            "log region must hold whole records"
        );
        MemLog {
            node,
            slots,
            head: 0,
            tail: 0,
            live_records: 0,
            records: std::collections::VecDeque::new(),
            seq: 0,
            stats: LogStats::default(),
        }
    }

    /// The node whose memory holds this log.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.slots.len() * LINE_SIZE) as u64
    }

    /// Live (unreclaimed) bytes.
    pub fn live_bytes(&self) -> u64 {
        (self.live_records * RECORD_LINES * LINE_SIZE) as u64
    }

    /// Fraction of the log currently occupied.
    pub fn utilization(&self) -> f64 {
        self.live_bytes() as f64 / self.capacity_bytes() as f64
    }

    /// Statistics so far.
    pub fn stats(&self) -> LogStats {
        self.stats
    }

    /// The memory lines backing the log (for parity-group bookkeeping).
    pub fn slot_lines(&self) -> &[LineAddr] {
        &self.slots
    }

    /// How many records fit (used to size validation shadows).
    pub fn capacity_records(&self) -> usize {
        self.slots.len() / RECORD_LINES
    }

    fn push_record(
        &mut self,
        meta: LineData,
        data: LineData,
        interval: u64,
        compute_deltas: bool,
        mem: &mut dyn MemPort,
    ) -> Vec<(LineAddr, LineData)> {
        assert!(
            self.live_records < self.capacity_records(),
            "log overflow on {}: {} records live (checkpoint more often or \
             enlarge the log region)",
            self.node,
            self.live_records
        );
        let data_slot = self.slots[self.tail];
        let meta_slot = self.slots[self.tail + 1];
        let mut out = Vec::with_capacity(2);
        // Order matters (Log-Data Update Race, Section 4.2): data first,
        // marker second. The parity deltas are computed against the slots'
        // previous contents so the group XOR invariant is preserved.
        for (slot, new) in [(data_slot, data), (meta_slot, meta)] {
            let delta = if compute_deltas {
                let old = mem.read(slot);
                old ^ new
            } else {
                new // mirroring: the mirror is overwritten with the new value
            };
            mem.write(slot, new);
            out.push((slot, delta));
        }
        self.records.push_back((self.seq, interval));
        self.seq += 1;
        self.tail = (self.tail + RECORD_LINES) % self.slots.len();
        self.live_records += 1;
        self.stats.high_water_bytes = self.stats.high_water_bytes.max(self.live_bytes());
        out
    }

    /// Appends the pre-image of `line`. Returns `(slot, delta)` pairs for
    /// the parity updates of the written log lines (`delta` is the new
    /// contents when `compute_deltas` is false — the mirroring mode, which
    /// overwrites the mirror instead of XOR-updating parity).
    ///
    /// # Panics
    ///
    /// Panics if the log is full; the machine is expected to establish a
    /// checkpoint before that happens (see `revive-machine`'s early-
    /// checkpoint trigger).
    pub fn append(
        &mut self,
        interval: u64,
        line: LineAddr,
        old: LineData,
        compute_deltas: bool,
        mem: &mut dyn MemPort,
    ) -> Vec<(LineAddr, LineData)> {
        let mut meta = LineData::ZERO;
        meta.set_u64_at(0, MAGIC_ENTRY);
        meta.set_u64_at(8, line.0);
        meta.set_u64_at(16, interval);
        meta.set_u64_at(24, self.seq);
        meta.set_u64_at(32, MAGIC_ENTRY ^ line.0 ^ interval ^ self.seq);
        self.stats.appends += 1;
        self.push_record(meta, old, interval, compute_deltas, mem)
    }

    /// Writes a checkpoint-commit marker for `interval`. Part of the
    /// two-phase commit: a processor passing the first barrier marks the new
    /// checkpoint as established in its local log.
    pub fn mark_checkpoint(
        &mut self,
        interval: u64,
        compute_deltas: bool,
        mem: &mut dyn MemPort,
    ) -> Vec<(LineAddr, LineData)> {
        let mut meta = LineData::ZERO;
        meta.set_u64_at(0, MAGIC_CKPT);
        meta.set_u64_at(16, interval);
        meta.set_u64_at(24, self.seq);
        meta.set_u64_at(32, MAGIC_CKPT ^ interval ^ self.seq);
        self.stats.markers += 1;
        self.push_record(meta, LineData::ZERO, interval, compute_deltas, mem)
    }

    /// Frees all records created in intervals before `interval` (after
    /// establishing checkpoint `N` with two checkpoints retained, records
    /// from interval `N-2` are reclaimed). Only pointers move — the paper's
    /// "moving the log head pointer and a few bookkeeping operations".
    pub fn reclaim_before(&mut self, interval: u64) {
        while let Some(&(_, rec_interval)) = self.records.front() {
            if rec_interval >= interval {
                break;
            }
            self.records.pop_front();
            self.head = (self.head + RECORD_LINES) % self.slots.len();
            self.live_records -= 1;
            self.stats.reclaimed += 1;
        }
    }

    /// Scans the log *memory* for valid records, ignoring bookkeeping. This
    /// is how a reconstructed (formerly lost) log is read: pointers did not
    /// survive, but markers are self-describing.
    pub fn scan<F>(&self, mut read: F) -> Vec<ScannedRecord>
    where
        F: FnMut(LineAddr) -> LineData,
    {
        let mut found = Vec::new();
        for rec in 0..self.capacity_records() {
            let meta = read(self.slots[rec * RECORD_LINES + 1]);
            let magic = meta.u64_at(0);
            if magic != MAGIC_ENTRY && magic != MAGIC_CKPT {
                continue;
            }
            let line = meta.u64_at(8);
            let interval = meta.u64_at(16);
            let seq = meta.u64_at(24);
            let checksum = meta.u64_at(32);
            if checksum != magic ^ line ^ interval ^ seq {
                continue; // torn or stale metadata: not a valid marker
            }
            let kind = if magic == MAGIC_ENTRY {
                RecordKind::Entry {
                    line: LineAddr(line),
                }
            } else {
                RecordKind::CheckpointMarker
            };
            found.push(ScannedRecord {
                kind,
                interval,
                seq,
                data_slot: rec * RECORD_LINES,
            });
        }
        found.sort_by_key(|r| r.seq);
        found
    }

    /// Produces the entries needed to roll memory back to the state at the
    /// start of `target_interval`, in replay (descending-seq) order. Based
    /// on a scan, so it works on reconstructed logs.
    pub fn rollback_entries<F>(&self, target_interval: u64, mut read: F) -> Vec<ReplayEntry>
    where
        F: FnMut(LineAddr) -> LineData,
    {
        let mut scanned = self.scan(&mut read);
        scanned.retain(|r| r.interval >= target_interval);
        scanned.sort_by_key(|r| std::cmp::Reverse(r.seq));
        scanned
            .into_iter()
            .filter_map(|r| match r.kind {
                RecordKind::Entry { line } => Some(ReplayEntry {
                    line,
                    data: read(self.slots[r.data_slot]),
                    seq: r.seq,
                }),
                RecordKind::CheckpointMarker => None,
            })
            .collect()
    }

    /// Drops the oldest half of the live records regardless of interval.
    /// Only used by the infinite-checkpoint-interval measurement
    /// configurations (the paper's CpInf bars), which never commit
    /// checkpoints and therefore never reclaim; recovery is not meaningful
    /// in those runs.
    pub fn reclaim_oldest_half(&mut self) {
        let drop = self.live_records / 2;
        for _ in 0..drop {
            self.records.pop_front();
            self.head = (self.head + RECORD_LINES) % self.slots.len();
            self.live_records -= 1;
            self.stats.reclaimed += 1;
        }
    }

    /// Forgets all bookkeeping (used after a rollback: the replayed log
    /// space belongs to discarded intervals).
    pub fn reset(&mut self) {
        self.head = 0;
        self.tail = 0;
        self.live_records = 0;
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revive_coherence::port::VecPort;

    fn setup(records: usize) -> (MemLog, VecPort) {
        let slots: Vec<LineAddr> = (0..records * RECORD_LINES)
            .map(|i| LineAddr(1000 + i as u64))
            .collect();
        let port = VecPort::new(LineAddr(1000), records * RECORD_LINES);
        (MemLog::new(NodeId(0), slots), port)
    }

    #[test]
    fn append_writes_data_then_marker() {
        let (mut log, mut mem) = setup(4);
        let deltas = log.append(0, LineAddr(42), LineData::fill(7), true, &mut mem);
        assert_eq!(deltas.len(), 2);
        // Data slot holds the pre-image.
        assert_eq!(mem.peek(LineAddr(1000)), LineData::fill(7));
        // Meta slot is a valid marker.
        let scanned = log.scan(|l| mem.peek(l));
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].kind, RecordKind::Entry { line: LineAddr(42) });
        assert_eq!(scanned[0].interval, 0);
    }

    #[test]
    fn deltas_equal_old_xor_new_in_parity_mode() {
        let (mut log, mut mem) = setup(4);
        // Pre-dirty the first slot so the delta is nontrivial.
        mem.write(LineAddr(1000), LineData::fill(0xF0));
        mem.reset_counts();
        let deltas = log.append(0, LineAddr(1), LineData::fill(0x0F), true, &mut mem);
        assert_eq!(deltas[0].0, LineAddr(1000));
        assert_eq!(deltas[0].1, LineData::fill(0xFF));
        // 2 reads (old slot contents) + 2 writes.
        assert_eq!((mem.reads, mem.writes), (2, 2));
    }

    #[test]
    fn mirror_mode_skips_reads() {
        let (mut log, mut mem) = setup(4);
        let deltas = log.append(0, LineAddr(1), LineData::fill(0x55), false, &mut mem);
        assert_eq!(mem.reads, 0);
        assert_eq!(deltas[0].1, LineData::fill(0x55)); // new value, not a delta
    }

    #[test]
    fn rollback_entries_are_reverse_ordered_and_filtered() {
        let (mut log, mut mem) = setup(8);
        log.append(0, LineAddr(10), LineData::fill(1), true, &mut mem);
        log.mark_checkpoint(1, true, &mut mem);
        log.append(1, LineAddr(11), LineData::fill(2), true, &mut mem);
        log.append(1, LineAddr(10), LineData::fill(3), true, &mut mem);
        let entries = log.rollback_entries(1, |l| mem.peek(l));
        // Only interval >= 1 entries, newest first; the marker is skipped.
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].line, LineAddr(10));
        assert_eq!(entries[0].data, LineData::fill(3));
        assert_eq!(entries[1].line, LineAddr(11));
        // Rolling back to interval 0 includes everything.
        let all = log.rollback_entries(0, |l| mem.peek(l));
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].data, LineData::fill(1));
    }

    #[test]
    fn reclamation_frees_space() {
        let (mut log, mut mem) = setup(4);
        for i in 0..4u64 {
            log.append(i / 2, LineAddr(i), LineData::ZERO, true, &mut mem);
        }
        assert_eq!(log.utilization(), 1.0);
        log.reclaim_before(1); // drop interval-0 records
        assert_eq!(log.stats().reclaimed, 2);
        assert_eq!(log.utilization(), 0.5);
        // Space is reusable.
        log.append(2, LineAddr(9), LineData::ZERO, true, &mut mem);
        log.append(2, LineAddr(9), LineData::ZERO, true, &mut mem);
        assert_eq!(log.utilization(), 1.0);
    }

    #[test]
    #[should_panic(expected = "log overflow")]
    fn overflow_panics() {
        let (mut log, mut mem) = setup(2);
        for i in 0..3u64 {
            log.append(0, LineAddr(i), LineData::ZERO, true, &mut mem);
        }
    }

    #[test]
    fn stale_reclaimed_records_are_interval_filtered() {
        let (mut log, mut mem) = setup(4);
        log.append(0, LineAddr(1), LineData::fill(1), true, &mut mem);
        log.append(0, LineAddr(2), LineData::fill(2), true, &mut mem);
        log.reclaim_before(5);
        // The records are still physically in memory (pointers only moved)…
        assert_eq!(log.scan(|l| mem.peek(l)).len(), 2);
        // …but a rollback to interval 5 ignores them.
        assert!(log.rollback_entries(5, |l| mem.peek(l)).is_empty());
    }

    #[test]
    fn torn_marker_is_ignored() {
        let (mut log, mut mem) = setup(4);
        log.append(0, LineAddr(1), LineData::fill(1), true, &mut mem);
        // Corrupt the metadata checksum: simulates an error mid-append.
        let meta_slot = LineAddr(1001);
        let mut meta = mem.peek(meta_slot);
        meta.set_u64_at(32, 0xBAD);
        mem.write(meta_slot, meta);
        assert!(log.scan(|l| mem.peek(l)).is_empty());
        assert!(log.rollback_entries(0, |l| mem.peek(l)).is_empty());
    }

    #[test]
    fn high_water_tracks_peak() {
        let (mut log, mut mem) = setup(4);
        for i in 0..3u64 {
            log.append(0, LineAddr(i), LineData::ZERO, true, &mut mem);
        }
        log.reclaim_before(1);
        assert_eq!(log.stats().high_water_bytes, 3 * 2 * 64);
        assert_eq!(log.live_bytes(), 0);
    }

    #[test]
    fn reclaim_before_is_a_strict_interval_cut() {
        let (mut log, mut mem) = setup(8);
        // Two records each in intervals 0, 1, 2.
        for interval in 0..3u64 {
            for i in 0..2u64 {
                log.append(
                    interval,
                    LineAddr(interval * 10 + i),
                    LineData::ZERO,
                    true,
                    &mut mem,
                );
            }
        }
        log.reclaim_before(0); // no-op: nothing precedes interval 0
        assert_eq!(log.stats().reclaimed, 0);
        log.reclaim_before(2); // drops intervals 0 and 1, keeps 2
        assert_eq!(log.stats().reclaimed, 4);
        assert_eq!(log.live_bytes(), 2 * 2 * 64);
        // Idempotent.
        log.reclaim_before(2);
        assert_eq!(log.stats().reclaimed, 4);
    }

    #[test]
    fn reclaim_oldest_half_keeps_newest() {
        let (mut log, mut mem) = setup(8);
        for i in 0..6u64 {
            log.append(0, LineAddr(i), LineData::fill(i as u8), true, &mut mem);
        }
        log.reclaim_oldest_half();
        assert_eq!(log.stats().reclaimed, 3);
        assert_eq!(log.live_bytes(), 3 * 2 * 64);
        // Freed slots are reused from the oldest position; the newest
        // records (3, 4, 5) survive until overwritten.
        log.append(0, LineAddr(9), LineData::ZERO, true, &mut mem);
        let entries = log.rollback_entries(0, |l| mem.peek(l));
        let lines: Vec<u64> = entries.iter().map(|e| e.line.0).collect();
        assert!(lines.contains(&3) && lines.contains(&4) && lines.contains(&5));
        assert!(lines.contains(&9));
    }

    #[test]
    fn circular_wraparound_drops_and_invents_nothing() {
        // Append far past the capacity (with interleaved reclamation so the
        // log never overflows) and check the scan sees exactly the records
        // whose slots were not overwritten — no phantom or dropped records.
        let (mut log, mut mem) = setup(4);
        for round in 0..13u64 {
            log.append(
                round,
                LineAddr(100 + round),
                LineData::fill(round as u8),
                true,
                &mut mem,
            );
            log.reclaim_before(round.saturating_sub(1)); // keep ≤2 live
        }
        let scanned = log.scan(|l| mem.peek(l));
        // 13 appends into 4 physical slots: exactly the last 4 remain.
        let seqs: Vec<u64> = scanned.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![9, 10, 11, 12]);
        for r in &scanned {
            assert_eq!(
                r.kind,
                RecordKind::Entry {
                    line: LineAddr(100 + r.interval)
                }
            );
            // The pre-image in the data slot is intact.
            assert_eq!(
                mem.peek(LineAddr(1000 + r.data_slot as u64)),
                LineData::fill(r.interval as u8)
            );
        }
        // Replay from the live window only.
        let entries = log.rollback_entries(12, |l| mem.peek(l));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].line, LineAddr(112));
        assert_eq!(entries[0].data, LineData::fill(12));
    }

    #[test]
    fn wraparound_preserves_alignment() {
        let (mut log, mut mem) = setup(4);
        for round in 0..6u64 {
            log.append(
                round,
                LineAddr(round),
                LineData::fill(round as u8),
                true,
                &mut mem,
            );
            log.reclaim_before(round); // keep at most 2 records live
        }
        let entries = log.rollback_entries(5, |l| mem.peek(l));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].data, LineData::fill(5));
    }
}
