//! # ReVive core mechanisms
//!
//! This crate implements the contribution of *"ReVive: Cost-Effective
//! Architectural Support for Rollback Recovery in Shared-Memory
//! Multiprocessors"* (ISCA 2002): memory-based checkpointing, logging, and
//! distributed parity protection, all confined to the directory controller.
//!
//! * [`parity`] — distributed N+1 parity groups (Figure 3), XOR update
//!   messages (Figure 4), and mirroring as the degenerate 1+1 case.
//! * [`log`] — the memory-resident log with validity markers and
//!   scan-based, bookkeeping-free recovery (Sections 3.2.2, 4.2).
//! * [`lbits`] — the Logged bits with gang-clear, including the lossy
//!   directory-cache variant (Section 4.1.2).
//! * [`dirext`] — the directory-controller extension tying the above into
//!   the coherence protocol's write hook, with Table 1 cost accounting.
//! * [`checkpoint`] — global two-phase-commit checkpoint configuration and
//!   Figure-6 timelines.
//! * [`redundancy`] — pluggable redundancy backends behind the
//!   [`redundancy::RedundancyBackend`] trait: the paper's XOR parity plus
//!   RAID-6-style P+Q double parity over GF(256) and ReStore-style
//!   k-replication, for surviving multi-node loss.
//! * [`recovery`] — the four-phase rollback engine (Figure 7), operating on
//!   functional memory images for value-exact verification.
//! * [`availability`] — the availability arithmetic of Sections 3.3.2/6.3.
//! * [`validate`] — recovery-correctness oracles: a shadow log, a full
//!   parity-group auditor, and virtual-page memory images for differential
//!   (golden vs. injected) comparison.
//!
//! # Example: parity protects a lost line
//!
//! ```
//! use revive_core::parity::ParityMap;
//! use revive_mem::addr::{AddressMap, LineAddr, PAGE_SIZE};
//! use revive_mem::line::LineData;
//!
//! let map = AddressMap::new(4, 4 * PAGE_SIZE as u64);
//! let parity = ParityMap::new(map, 3);
//! // With an all-zero memory, every group XORs to zero:
//! let some_page = map.pages_of(revive_sim::types::NodeId(0))
//!     .find(|&p| !parity.is_parity_page(p)).unwrap();
//! assert_eq!(parity.check_group(some_page, |_| LineData::ZERO), None);
//! ```

pub mod availability;
pub mod checkpoint;
pub mod dirext;
pub mod lbits;
pub mod log;
pub mod parity;
pub mod recovery;
pub mod redundancy;
pub mod validate;

pub use availability::{monte_carlo_availability, nines, AvailabilityModel, OutcomeTally};
pub use checkpoint::{CheckpointConfig, CkptPhase, CkptStats, CkptTimeline};
pub use dirext::{CostStats, OutMsg, ReviveHook};
pub use lbits::LBits;
pub use log::{MemLog, ReplayEntry};
pub use parity::{ParityAck, ParityMap, ParityUpdate};
pub use recovery::{recover, RecoveryError, RecoveryInput, RecoveryReport, RecoveryTiming};
pub use redundancy::{
    DoubleParityMap, Redundancy, RedundancyBackend, RedundancyGroup, ReplicationMap,
};
pub use validate::{
    audit_parity, audit_redundancy, LogDivergence, MemoryDiff, MemoryImage, ParityAudit, ShadowLog,
};
