//! Global checkpoint establishment (Section 3.2.3, Figure 6).
//!
//! Establishing a checkpoint: interrupt all processors, save their execution
//! contexts, write all dirty cached data back to memory, wait for
//! outstanding operations, then atomically commit with a two-phase protocol
//! (barrier → mark established in each local log → barrier). Afterwards, log
//! space for checkpoints that are no longer needed is reclaimed and the L
//! bits are gang-cleared.
//!
//! The flushing itself runs through the coherence protocol in
//! `revive-machine`; this module holds the configuration, the phase state
//! machine, and the Figure-6 timeline record.

use revive_sim::time::Ns;

/// Checkpointing parameters.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointConfig {
    /// Interval between checkpoint starts (the paper's real machine uses
    /// 100 ms; its simulations, scaled to small caches, use 10 ms; this
    /// repository's default experiments scale further — see EXPERIMENTS.md).
    pub interval: Ns,
    /// Cross-processor interrupt delivery latency (under 5 µs, Section
    /// 3.3.1).
    pub interrupt_latency: Ns,
    /// Time to save one processor's execution context to memory.
    pub context_save: Ns,
    /// One global barrier synchronization (up to 10 µs on 16 processors).
    pub barrier_latency: Ns,
    /// How many past checkpoints remain recoverable (2 when the error
    /// detection latency is below one interval; more for longer latencies).
    pub retained: u64,
    /// Establish a checkpoint early when any node's log passes this
    /// utilization (the paper assumes "sufficient logs"; this keeps that
    /// assumption true under pathological write storms).
    pub early_trigger_utilization: f64,
}

impl Default for CheckpointConfig {
    fn default() -> CheckpointConfig {
        CheckpointConfig {
            interval: Ns::from_ms(10),
            interrupt_latency: Ns::from_us(5),
            context_save: Ns::from_us(1),
            barrier_latency: Ns::from_us(10),
            retained: 2,
            early_trigger_utilization: 0.75,
        }
    }
}

/// The phases of one checkpoint establishment, in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CkptPhase {
    /// Normal execution.
    Idle,
    /// Interrupt delivered; processors saving contexts.
    Interrupting,
    /// Dirty cached data being written back to memory.
    Flushing,
    /// Waiting for every processor's outstanding operations to drain.
    Draining,
    /// First commit barrier.
    Barrier1,
    /// Each processor marks the checkpoint established in its local log.
    Marking,
    /// Second commit barrier.
    Barrier2,
    /// Log reclamation + L-bit gang clear; then back to Idle.
    Reclaiming,
}

/// Timestamps of one checkpoint establishment (Figure 6's time-line).
#[derive(Clone, Copy, Debug, Default)]
pub struct CkptTimeline {
    /// Checkpoint sequence number (interval id being committed).
    pub id: u64,
    /// When the interrupt was raised.
    pub started: Ns,
    /// When all contexts were saved and flushing began.
    pub flush_started: Ns,
    /// When the last dirty line was acknowledged.
    pub flush_done: Ns,
    /// When the first barrier completed.
    pub barrier1_done: Ns,
    /// When every local log carried the commit marker.
    pub marked: Ns,
    /// When the second barrier completed — the commit point.
    pub committed: Ns,
    /// When execution resumed.
    pub resumed: Ns,
    /// Dirty lines written back by this checkpoint.
    pub lines_flushed: u64,
}

impl CkptTimeline {
    /// Total time execution was perturbed by this checkpoint.
    pub fn duration(&self) -> Ns {
        self.resumed.saturating_sub(self.started)
    }

    /// Time spent writing back dirty data (the dominant cost, Section
    /// 3.3.1).
    pub fn flush_time(&self) -> Ns {
        self.flush_done.saturating_sub(self.flush_started)
    }

    /// The Figure-6 phase decomposition as named `(name, start, end)`
    /// intervals, in order: interrupt → flush → drain/barrier 1 → mark →
    /// barrier 2 → reclaim. Intervals the machine skipped (e.g. nothing to
    /// flush) come out empty rather than being omitted, so every timeline
    /// has the same shape.
    pub fn phases(&self) -> [(&'static str, Ns, Ns); 6] {
        [
            ("interrupt", self.started, self.flush_started),
            ("flush", self.flush_started, self.flush_done),
            ("barrier1", self.flush_done, self.barrier1_done),
            ("mark", self.barrier1_done, self.marked),
            ("barrier2", self.marked, self.committed),
            ("reclaim", self.committed, self.resumed),
        ]
    }
}

/// Aggregate checkpoint statistics for a run.
#[derive(Clone, Debug, Default)]
pub struct CkptStats {
    /// Per-checkpoint timelines, in order.
    pub timelines: Vec<CkptTimeline>,
    /// Checkpoints triggered early by log pressure.
    pub early_triggers: u64,
}

impl CkptStats {
    /// Number of checkpoints established.
    pub fn count(&self) -> u64 {
        self.timelines.len() as u64
    }

    /// Total time spent establishing checkpoints.
    pub fn total_overhead(&self) -> Ns {
        self.timelines.iter().map(CkptTimeline::duration).sum()
    }

    /// Mean checkpoint duration.
    pub fn mean_duration(&self) -> Ns {
        if self.timelines.is_empty() {
            Ns::ZERO
        } else {
            self.total_overhead() / self.timelines.len() as u64
        }
    }

    /// Longest checkpoint duration.
    pub fn max_duration(&self) -> Ns {
        self.timelines
            .iter()
            .map(CkptTimeline::duration)
            .max()
            .unwrap_or(Ns::ZERO)
    }

    /// Total dirty lines flushed across all checkpoints.
    pub fn total_lines_flushed(&self) -> u64 {
        self.timelines.iter().map(|t| t.lines_flushed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline(start: u64, end: u64, flushed: u64) -> CkptTimeline {
        CkptTimeline {
            id: 0,
            started: Ns(start),
            flush_started: Ns(start + 5),
            flush_done: Ns(start + 50),
            barrier1_done: Ns(start + 60),
            marked: Ns(start + 61),
            committed: Ns(start + 70),
            resumed: Ns(end),
            lines_flushed: flushed,
        }
    }

    #[test]
    fn timeline_durations() {
        let t = timeline(100, 200, 32);
        assert_eq!(t.duration(), Ns(100));
        assert_eq!(t.flush_time(), Ns(45));
    }

    #[test]
    fn stats_aggregate() {
        let mut s = CkptStats::default();
        s.timelines.push(timeline(0, 100, 10));
        s.timelines.push(timeline(1000, 1300, 20));
        assert_eq!(s.count(), 2);
        assert_eq!(s.total_overhead(), Ns(400));
        assert_eq!(s.mean_duration(), Ns(200));
        assert_eq!(s.max_duration(), Ns(300));
        assert_eq!(s.total_lines_flushed(), 30);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = CkptStats::default();
        assert_eq!(s.mean_duration(), Ns::ZERO);
        assert_eq!(s.max_duration(), Ns::ZERO);
    }

    #[test]
    fn default_config_matches_paper() {
        let c = CheckpointConfig::default();
        assert_eq!(c.interrupt_latency, Ns::from_us(5));
        assert_eq!(c.barrier_latency, Ns::from_us(10));
        assert_eq!(c.retained, 2);
    }
}
