//! Rollback recovery (Section 3.2.4, Figure 7).
//!
//! When an error is detected the machine runs four phases:
//!
//! 1. **Hardware recovery** — diagnosis, reconfiguration, protocol reset
//!    (outside the paper's scope; charged a fixed time, 50 ms on the real
//!    machine, from the Hive/FLASH measurements the paper cites).
//! 2. **Log reconstruction** — if a node's memory was lost, the pages
//!    holding its log are rebuilt through the active redundancy backend
//!    (parity groups, P+Q equations, or replicas) so its log can be
//!    replayed.
//! 3. **Rollback** — every node replays its local log in reverse, restoring
//!    memory to the target checkpoint. Lost pages that receive restored data
//!    are rebuilt on demand first. Caches and directories are reset by the
//!    machine around this call. After this phase the machine is *available*
//!    again.
//! 4. **Background rebuild** — remaining lost pages and stale redundancy
//!    groups are reconstructed while the application runs degraded.
//!
//! The engine operates on the *functional* memory images, so tests can
//! verify value-exact restoration; phase timings come from an explicit
//! bandwidth model ([`RecoveryTiming`]) because recovery runs outside the
//! cycle-level simulation (the paper, likewise, reports recovery at
//! millisecond granularity).

use std::collections::HashSet;

use revive_mem::addr::{AddressMap, LineAddr, PageAddr};
use revive_mem::line::LineData;
use revive_mem::main_memory::NodeMemory;
use revive_sim::time::Ns;
use revive_sim::types::NodeId;

use crate::log::MemLog;
use crate::redundancy::{Redundancy, RedundancyBackend};

/// The bandwidth model for recovery timing.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryTiming {
    /// Phase 1: fixed hardware recovery time.
    pub hw_recovery: Ns,
    /// Cost to rebuild one 4 KB page from its redundancy group.
    pub page_rebuild: Ns,
    /// Cost to replay one log entry (read entry, write memory, update
    /// parity).
    pub entry_replay: Ns,
    /// Processors participating in parallel reconstruction.
    pub workers: usize,
}

impl RecoveryTiming {
    /// Derives costs from the machine's parameters: rebuilding a page
    /// fetches `rebuild_fanin` remote pages (network-bound at ~3.2 bytes/ns
    /// plus DRAM row-streaming) and writes one; replaying an entry is a
    /// couple of local line accesses plus a redundancy update. The fan-in
    /// is the backend's [`RedundancyBackend::rebuild_fanin`]: `G` for
    /// parity schemes, 1 for replication (a straight copy).
    pub fn derive(rebuild_fanin: usize, workers: usize) -> RecoveryTiming {
        assert!(workers > 0, "recovery needs at least one worker");
        let page_bytes = 4096u64;
        // Per remote page: network transfer + source DRAM streaming.
        let per_remote = Ns((page_bytes as f64 / 3.2) as u64) + Ns(64 * 20);
        let page_rebuild = per_remote * rebuild_fanin as u64 + Ns(64 * 20);
        RecoveryTiming {
            hw_recovery: Ns::from_ms(50),
            page_rebuild,
            entry_replay: Ns(3 * 60 + 46), // 3 line accesses + parity message
            workers,
        }
    }
}

/// Everything recovery needs to see and mutate.
pub struct RecoveryInput<'a> {
    /// Functional memory of every node.
    pub memories: &'a mut [NodeMemory],
    /// Every node's log (bookkeeping; contents are read from the memories).
    pub logs: &'a [&'a MemLog],
    /// The active redundancy backend.
    pub redundancy: &'a Redundancy,
    /// Roll back to the state at the establishment of this checkpoint
    /// interval.
    pub target_interval: u64,
    /// The nodes whose memories were lost *simultaneously* (empty for
    /// transient errors). Duplicates are tolerated and count once.
    pub lost: &'a [NodeId],
}

/// Why recovery refused to run. These are *classified outcomes*, not bugs:
/// the machine reports the fault as unrecoverable (a detected-unrecoverable
/// error in the paper's Section 3.1.2 taxonomy) and the campaign counts it
/// in the availability statistics instead of aborting the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryError {
    /// More simultaneously lost nodes share a redundancy group than the
    /// active backend's budget: N+1 parity reconstructs one missing member
    /// per group, P+Q two, k-replication `k` — past that, the group's data
    /// is gone.
    BeyondParityBudget {
        /// The nodes lost together.
        lost: Vec<NodeId>,
        /// The first redundancy page of a group with more lost members
        /// than the budget.
        group_parity: PageAddr,
    },
    /// A node was reported lost but its memory is intact — the damage report
    /// and the machine state disagree, and reconstructing over live data
    /// would corrupt it.
    LostNodeIntact {
        /// The allegedly lost node.
        node: NodeId,
    },
    /// A reported lost node does not exist in this machine.
    UnknownNode {
        /// The bogus node.
        node: NodeId,
        /// How many nodes the machine has.
        nodes: usize,
    },
    /// The surviving interconnect is partitioned: some surviving node
    /// cannot reach the rest, so the survivors cannot coordinate recovery
    /// (the paper's §3.3 assumes the fabric routes around the failure;
    /// when it cannot, the error is detected-unrecoverable, not a hang).
    Partitioned {
        /// A surviving node unreachable from the rest of the survivors.
        node: NodeId,
        /// Nodes still alive (including the isolated one).
        survivors: usize,
    },
    /// The fault was detected too late: checkpoints committed during the
    /// detection window (periodic or forced early by log pressure) advanced
    /// the machine past the retention window, reclaiming the logs needed to
    /// roll back to the last checkpoint that precedes the error. ReVive's
    /// recoverability guarantee assumes detection latency bounded by the
    /// retained-checkpoint window (paper §3.1.2); past it, the error is
    /// detected-unrecoverable.
    TargetReclaimed {
        /// The checkpoint the rollback needed.
        target: u64,
        /// The oldest checkpoint whose logs are still retained.
        oldest: u64,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::BeyondParityBudget { lost, group_parity } => {
                let names: Vec<String> = lost.iter().map(NodeId::to_string).collect();
                write!(
                    f,
                    "losing nodes {{{}}} exceeds the redundancy budget: the group of \
                     {group_parity} has more lost members than the backend can rebuild",
                    names.join(", ")
                )
            }
            RecoveryError::LostNodeIntact { node } => {
                write!(f, "node {node} was reported lost but its memory is intact")
            }
            RecoveryError::UnknownNode { node, nodes } => {
                write!(
                    f,
                    "lost node {node} does not exist (machine has {nodes} nodes)"
                )
            }
            RecoveryError::Partitioned { node, survivors } => {
                write!(
                    f,
                    "surviving torus is partitioned: node {node} cannot reach the other \
                     {} survivor(s)",
                    survivors.saturating_sub(1)
                )
            }
            RecoveryError::TargetReclaimed { target, oldest } => {
                write!(
                    f,
                    "detected too late: rollback target checkpoint {target} outlived the \
                     log retention window (oldest recoverable is {oldest})"
                )
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// What recovery did and how long each phase took (Figures 7 and 12).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Phase 1 duration (fixed hardware recovery).
    pub phase1: Ns,
    /// Phase 2 duration (log-page reconstruction).
    pub phase2: Ns,
    /// Phase 3 duration (rollback).
    pub phase3: Ns,
    /// Phase 4 duration (background rebuild; machine is available).
    pub phase4: Ns,
    /// Log pages rebuilt in Phase 2.
    pub log_pages_rebuilt: u64,
    /// Lost pages rebuilt on demand during rollback.
    pub pages_rebuilt_on_demand: u64,
    /// Log entries replayed.
    pub entries_replayed: u64,
    /// Pages reconstructed in the background (Phase 4).
    pub pages_rebuilt_background: u64,
}

impl RecoveryReport {
    /// Machine-unavailable time: Phases 1–3 (Phase 4 runs concurrently with
    /// useful work).
    pub fn unavailable(&self) -> Ns {
        self.phase1 + self.phase2 + self.phase3
    }

    /// The Figure-7 phase decomposition as named `(name, start, end)`
    /// intervals relative to `origin` (the detection time). Phases 1–3 run
    /// back to back; phase 4 starts when the machine becomes available
    /// again and overlaps resumed execution.
    pub fn phases(&self, origin: Ns) -> [(&'static str, Ns, Ns); 4] {
        let p1 = origin + self.phase1;
        let p2 = p1 + self.phase2;
        let p3 = p2 + self.phase3;
        [
            ("hw_recovery", origin, p1),
            ("log_rebuild", p1, p2),
            ("rollback", p2, p3),
            ("bg_rebuild", p3, p3 + self.phase4),
        ]
    }
}

fn read_global(mems: &[NodeMemory], map: &AddressMap, line: LineAddr) -> LineData {
    mems[map.home_of_line(line).index()].read_line(map.local_line_index(line))
}

fn write_global(mems: &mut [NodeMemory], map: &AddressMap, line: LineAddr, data: LineData) {
    mems[map.home_of_line(line).index()].write_line(map.local_line_index(line), data);
}

/// Reconstructs `page` (data or redundancy) from the surviving members of
/// its group, writing the result into its home memory. Member pages that
/// belong to a lost node and have not been rebuilt yet are reported to the
/// backend as missing, so a multi-loss rebuild never reads blank pages.
fn rebuild_page(
    mems: &mut [NodeMemory],
    rdx: &Redundancy,
    page: PageAddr,
    lost: &[NodeId],
    rebuilt: &HashSet<PageAddr>,
) {
    let map = *rdx.address_map();
    let missing = |p: PageAddr| lost.contains(&map.home_of_page(p)) && !rebuilt.contains(&p);
    let mut read = |l: LineAddr| read_global(mems, &map, l);
    let lines = rdx.rebuild_page(page, &missing, &mut read);
    for (offset, data) in lines.into_iter().enumerate() {
        write_global(
            mems,
            &map,
            LineAddr(page.first_line().0 + offset as u64),
            data,
        );
    }
}

/// Runs recovery (see module docs). The caller is responsible for wiping
/// caches, resetting directories, and restarting the ReVive hooks for a
/// fresh interval afterwards.
///
/// # Errors
///
/// Returns a [`RecoveryError`] — without touching any memory — when the
/// reported loss cannot be recovered from: a lost node that does not exist
/// or is not actually lost, or simultaneous losses that overwhelm a
/// redundancy group (beyond the backend's budget).
pub fn recover(
    input: RecoveryInput<'_>,
    timing: &RecoveryTiming,
) -> Result<RecoveryReport, RecoveryError> {
    let RecoveryInput {
        memories,
        logs,
        redundancy,
        target_interval,
        lost,
    } = input;
    let map = *redundancy.address_map();
    // Validate the damage report before mutating anything, so an
    // unrecoverable loss is classified rather than half-reconstructed.
    let mut lost_nodes: Vec<NodeId> = Vec::new();
    for &l in lost {
        if l.index() >= memories.len() {
            return Err(RecoveryError::UnknownNode {
                node: l,
                nodes: memories.len(),
            });
        }
        if !memories[l.index()].is_lost() {
            return Err(RecoveryError::LostNodeIntact { node: l });
        }
        if !lost_nodes.contains(&l) {
            lost_nodes.push(l);
        }
    }
    let lost = &lost_nodes[..];
    if let Some(group) = redundancy.overwhelmed_group(lost) {
        return Err(RecoveryError::BeyondParityBudget {
            lost: lost.to_vec(),
            group_parity: group.redundancy[0],
        });
    }
    let mut report = RecoveryReport {
        phase1: timing.hw_recovery,
        ..RecoveryReport::default()
    };
    let mut rebuilt: HashSet<PageAddr> = HashSet::new();
    // Redundancy pages that could not be maintained during replay (they
    // were lost) and must be recomputed in Phase 4.
    let mut stale_redundancy: HashSet<PageAddr> = HashSet::new();

    // ---- Phase 2: reconstruct the lost nodes' log pages. All lost
    // memories go blank first, so within the budget the backend always
    // sees which member pages are still missing and solves around them
    // (two lost members of one P+Q chunk are each other's unknowns). ----
    for &l in lost {
        memories[l.index()].reconstruct_blank();
    }
    for &l in lost {
        let log_pages: HashSet<PageAddr> = logs[l.index()]
            .slot_lines()
            .iter()
            .map(|s| s.page())
            .collect();
        for page in log_pages {
            rebuild_page(memories, redundancy, page, lost, &rebuilt);
            rebuilt.insert(page);
            report.log_pages_rebuilt += 1;
        }
    }
    report.phase2 = timing.page_rebuild * report.log_pages_rebuilt.div_ceil(timing.workers as u64);

    // ---- Phase 3: replay every node's log in reverse. ----
    let mut max_node_time = Ns::ZERO;
    for (n, log) in logs.iter().enumerate() {
        let node = NodeId::from(n);
        let entries = log.rollback_entries(target_interval, |l| read_global(memories, &map, l));
        let mut node_time = Ns::ZERO;
        for e in entries {
            debug_assert_eq!(
                map.home_of_line(e.line),
                node,
                "log entries restore lines homed on their own node"
            );
            let page = e.line.page();
            if lost.contains(&node) && !rebuilt.contains(&page) {
                // Rebuild on demand: the rest of the page holds unmodified
                // checkpoint data that only the redundancy can supply.
                rebuild_page(memories, redundancy, page, lost, &rebuilt);
                rebuilt.insert(page);
                report.pages_rebuilt_on_demand += 1;
                node_time += timing.page_rebuild;
            }
            let old = read_global(memories, &map, e.line);
            write_global(memories, &map, e.line, e.data);
            // Maintain the redundancy across the restore write, exactly as
            // the hardware would; skip (and mark stale) any redundancy page
            // that died with a lost node.
            let stores = redundancy.stores_values(page);
            let payload = if stores { e.data } else { old ^ e.data };
            for (rline, rpayload) in redundancy.expand_update(e.line, payload) {
                let rpage = rline.page();
                if lost.contains(&map.home_of_page(rpage)) && !rebuilt.contains(&rpage) {
                    stale_redundancy.insert(rpage);
                } else if stores {
                    write_global(memories, &map, rline, rpayload);
                } else {
                    let cur = read_global(memories, &map, rline);
                    write_global(memories, &map, rline, cur ^ rpayload);
                }
            }
            report.entries_replayed += 1;
            node_time += timing.entry_replay;
        }
        max_node_time = max_node_time.max(node_time);
    }
    report.phase3 = max_node_time;

    // ---- Phase 4: background reconstruction of everything still missing. ----
    for &l in lost {
        for page in map.pages_of(l) {
            if rebuilt.contains(&page) {
                continue;
            }
            rebuild_page(memories, redundancy, page, lost, &rebuilt);
            rebuilt.insert(page);
            stale_redundancy.remove(&page);
            report.pages_rebuilt_background += 1;
        }
    }
    for rpage in stale_redundancy {
        rebuild_page(memories, redundancy, rpage, lost, &rebuilt);
        report.pages_rebuilt_background += 1;
    }
    let bg_workers = (timing.workers / 2).max(1) as u64;
    report.phase4 = timing.page_rebuild * report.pages_rebuilt_background.div_ceil(bg_workers);

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parity::ParityMap;
    use crate::redundancy::{DoubleParityMap, ReplicationMap};
    use revive_coherence::port::MemPort;
    use revive_mem::addr::PAGE_SIZE;

    /// A tiny machine: `nodes` × a few pages under any redundancy backend,
    /// log in each node's last data page.
    struct World {
        nodes: usize,
        memories: Vec<NodeMemory>,
        logs: Vec<MemLog>,
        rdx: Redundancy,
    }

    /// MemPort view over one node's memory for feeding the log.
    struct NodePort<'a> {
        mem: &'a mut NodeMemory,
        map: AddressMap,
    }

    impl MemPort for NodePort<'_> {
        fn read(&mut self, line: LineAddr) -> LineData {
            self.mem.read_line(self.map.local_line_index(line))
        }
        fn write(&mut self, line: LineAddr, data: LineData) {
            self.mem.write_line(self.map.local_line_index(line), data);
        }
    }

    impl World {
        fn new() -> World {
            World::with(4, 3)
        }

        fn with(nodes: usize, group_data_pages: usize) -> World {
            let map = AddressMap::new(nodes, 4 * PAGE_SIZE as u64);
            World::with_rdx(
                nodes,
                4,
                Redundancy::Xor(ParityMap::new(map, group_data_pages)),
            )
        }

        fn with_rdx(nodes: usize, pages: u64, rdx: Redundancy) -> World {
            let map = *rdx.address_map();
            let memories: Vec<NodeMemory> = (0..nodes)
                .map(|_| NodeMemory::new(pages as usize * PAGE_SIZE))
                .collect();
            let logs: Vec<MemLog> = (0..nodes)
                .map(|n| {
                    let node = NodeId::from(n);
                    // Pick the node's highest-stripe data page for the log.
                    let page = (0..pages)
                        .rev()
                        .map(|s| map.global_page(node, s))
                        .find(|&p| !rdx.is_redundancy_page(p))
                        .unwrap();
                    MemLog::new(node, page.lines().collect())
                })
                .collect();
            World {
                nodes,
                memories,
                logs,
                rdx,
            }
        }

        fn map(&self) -> AddressMap {
            *self.rdx.address_map()
        }

        /// A writable data line on `node` outside its log and redundancy
        /// pages.
        fn app_line(&self, node: u16) -> LineAddr {
            let map = self.map();
            let log_pages: HashSet<PageAddr> = self.logs[node as usize]
                .slot_lines()
                .iter()
                .map(|l| l.page())
                .collect();
            let page = map
                .pages_of(NodeId(node))
                .find(|&p| !self.rdx.is_redundancy_page(p) && !log_pages.contains(&p))
                .unwrap();
            LineAddr(page.first_line().0 + 7)
        }

        /// Applies the expanded redundancy updates for a write of `payload`
        /// provenance at `line` (delta for parity backends, value for
        /// replicating ones).
        fn apply_updates(&mut self, line: LineAddr, old: LineData, new: LineData) {
            let map = self.map();
            let stores = self.rdx.stores_values(line.page());
            let payload = if stores { new } else { old ^ new };
            for (rl, rp) in self.rdx.expand_update(line, payload) {
                if stores {
                    write_global(&mut self.memories, &map, rl, rp);
                } else {
                    let cur = read_global(&self.memories, &map, rl);
                    write_global(&mut self.memories, &map, rl, cur ^ rp);
                }
            }
        }

        /// Simulates the hardware write path: log the old value, write the
        /// new one, update the redundancy of both the data and log lines.
        fn logged_write(&mut self, interval: u64, line: LineAddr, new: LineData) {
            let map = self.map();
            let node = map.home_of_line(line);
            let old = self.memories[node.index()].read_line(map.local_line_index(line));
            let log_stores = self
                .rdx
                .stores_values(self.logs[node.index()].slot_lines()[0].page());
            let deltas = {
                let mut port = NodePort {
                    mem: &mut self.memories[node.index()],
                    map,
                };
                self.logs[node.index()].append(interval, line, old, !log_stores, &mut port)
            };
            // Apply log redundancy (`deltas` already carries values when
            // the log's updates store values, deltas otherwise).
            for (slot, payload) in deltas {
                for (rl, rp) in self.rdx.expand_update(slot, payload) {
                    if log_stores {
                        write_global(&mut self.memories, &map, rl, rp);
                    } else {
                        let cur = read_global(&self.memories, &map, rl);
                        write_global(&mut self.memories, &map, rl, cur ^ rp);
                    }
                }
            }
            // Write data + its redundancy.
            write_global(&mut self.memories, &map, line, new);
            self.apply_updates(line, old, new);
        }

        fn check_all_parity(&self) {
            let map = self.map();
            for node in NodeId::all(self.nodes) {
                for page in map.pages_of(node) {
                    if self.rdx.is_redundancy_page(page) {
                        continue;
                    }
                    let v = self
                        .rdx
                        .check_group(page, &mut |l| read_global(&self.memories, &map, l));
                    assert_eq!(v, None, "redundancy violated in group of {page}");
                }
            }
        }

        fn snapshot(&self) -> Vec<Vec<u8>> {
            self.memories.iter().map(NodeMemory::snapshot).collect()
        }

        fn timing(&self) -> RecoveryTiming {
            RecoveryTiming::derive(3, 3)
        }
    }

    #[test]
    fn rollback_restores_exact_checkpoint_no_loss() {
        let mut w = World::new();
        let line = w.app_line(1);
        w.logged_write(0, line, LineData::fill(1));
        // Checkpoint 1 established here — snapshot is the reference.
        let reference = w.snapshot();
        // Interval 1 modifications.
        let line2 = w.app_line(2);
        w.logged_write(1, line, LineData::fill(2));
        w.logged_write(1, line2, LineData::fill(3));
        w.check_all_parity();
        // Roll back to checkpoint 1.
        let timing = w.timing();
        let report = recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                redundancy: &w.rdx,
                target_interval: 1,
                lost: &[],
            },
            &timing,
        )
        .unwrap();
        assert_eq!(report.entries_replayed, 2);
        assert_eq!(report.phase2, Ns::ZERO);
        let map = w.map();
        // Restored values match the checkpoint exactly.
        assert_eq!(read_global(&w.memories, &map, line), LineData::fill(1));
        assert_eq!(read_global(&w.memories, &map, line2), LineData::ZERO);
        // Full-memory comparison: every non-log page equals the reference.
        // (Log pages accumulated interval-1 records; they are reclaimed by
        // the next interval, not rolled back.)
        let log_pages: HashSet<PageAddr> = w
            .logs
            .iter()
            .flat_map(|l| l.slot_lines().iter().map(|s| s.page()))
            .collect();
        #[allow(clippy::needless_range_loop)] // node names both memories and reference
        for node in 0..4usize {
            for page in map.pages_of(NodeId::from(node)) {
                if log_pages.contains(&page) || w.rdx.is_redundancy_page(page) {
                    continue;
                }
                for l in page.lines() {
                    let got = read_global(&w.memories, &map, l);
                    let want_off = (map.local_line_index(l) * 64) as usize;
                    let want: [u8; 64] =
                        reference[node][want_off..want_off + 64].try_into().unwrap();
                    assert_eq!(got, LineData::from(want), "line {l}");
                }
            }
        }
        w.check_all_parity();
    }

    #[test]
    fn node_loss_recovery_restores_checkpoint_and_parity() {
        let mut w = World::new();
        let lines: Vec<LineAddr> = (0..4).map(|n| w.app_line(n)).collect();
        for (i, &l) in lines.iter().enumerate() {
            w.logged_write(0, l, LineData::fill(0x10 + i as u8));
        }
        let reference = w.snapshot();
        // Interval 1 writes on every node.
        for (i, &l) in lines.iter().enumerate() {
            w.logged_write(1, l, LineData::fill(0x20 + i as u8));
        }
        w.check_all_parity();
        // Node 2 dies.
        w.memories[2].destroy();
        let timing = w.timing();
        let report = recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                redundancy: &w.rdx,
                target_interval: 1,
                lost: &[NodeId(2)],
            },
            &timing,
        )
        .unwrap();
        assert!(report.log_pages_rebuilt > 0);
        assert_eq!(report.entries_replayed, 4);
        assert!(report.unavailable() > report.phase1);
        let map = w.map();
        // Every node, including the lost one, is back at the checkpoint.
        for (i, &l) in lines.iter().enumerate() {
            assert_eq!(
                read_global(&w.memories, &map, l),
                LineData::fill(0x10 + i as u8),
                "line {l}"
            );
        }
        // Full lost-node reconstruction: compare non-log pages byte-exact.
        let log_pages: HashSet<PageAddr> =
            w.logs[2].slot_lines().iter().map(|s| s.page()).collect();
        for page in map.pages_of(NodeId(2)) {
            if log_pages.contains(&page) || w.rdx.is_redundancy_page(page) {
                continue;
            }
            for l in page.lines() {
                let got = read_global(&w.memories, &map, l);
                let off = (map.local_line_index(l) * 64) as usize;
                let want: [u8; 64] = reference[2][off..off + 64].try_into().unwrap();
                assert_eq!(got, LineData::from(want), "lost-node line {l}");
            }
        }
        // Phase 4 restored the global parity invariant.
        w.check_all_parity();
    }

    #[test]
    fn losing_the_parity_home_still_recovers() {
        let mut w = World::new();
        let map = w.map();
        let line = w.app_line(0);
        // Find the node holding this line's parity and kill that one.
        let pnode = map.home_of_page(w.rdx.as_xor().unwrap().parity_page_of(line.page()));
        assert_ne!(pnode, NodeId(0));
        w.logged_write(0, line, LineData::fill(0xAA));
        w.logged_write(1, line, LineData::fill(0xBB));
        w.memories[pnode.index()].destroy();
        recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                redundancy: &w.rdx,
                target_interval: 1,
                lost: &[pnode],
            },
            &RecoveryTiming::derive(3, 3),
        )
        .unwrap();
        assert_eq!(read_global(&w.memories, &map, line), LineData::fill(0xAA));
        w.check_all_parity();
    }

    #[test]
    fn double_loss_in_different_chunks_recovers() {
        // 8 nodes, 3+1 parity: chunks {0..3} and {4..7}. Losing one node
        // from each chunk costs every group at most one member, so both
        // nodes reconstruct.
        let mut w = World::with(8, 3);
        let lines: Vec<LineAddr> = (0..8).map(|n| w.app_line(n)).collect();
        for (i, &l) in lines.iter().enumerate() {
            w.logged_write(0, l, LineData::fill(0x30 + i as u8));
        }
        let reference = w.snapshot();
        for (i, &l) in lines.iter().enumerate() {
            w.logged_write(1, l, LineData::fill(0x40 + i as u8));
        }
        w.check_all_parity();
        w.memories[1].destroy();
        w.memories[5].destroy();
        let report = recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                redundancy: &w.rdx,
                target_interval: 1,
                lost: &[NodeId(1), NodeId(5)],
            },
            &RecoveryTiming::derive(3, 6),
        )
        .unwrap();
        assert!(report.log_pages_rebuilt >= 2, "both logs rebuilt");
        let map = w.map();
        for (i, &l) in lines.iter().enumerate() {
            assert_eq!(
                read_global(&w.memories, &map, l),
                LineData::fill(0x30 + i as u8),
                "line {l}"
            );
        }
        // Both lost nodes restored byte-exact (outside their log pages).
        for lost in [1usize, 5] {
            let log_pages: HashSet<PageAddr> =
                w.logs[lost].slot_lines().iter().map(|s| s.page()).collect();
            for page in map.pages_of(NodeId::from(lost)) {
                if log_pages.contains(&page) || w.rdx.is_redundancy_page(page) {
                    continue;
                }
                for l in page.lines() {
                    let got = read_global(&w.memories, &map, l);
                    let off = (map.local_line_index(l) * 64) as usize;
                    let want: [u8; 64] = reference[lost][off..off + 64].try_into().unwrap();
                    assert_eq!(got, LineData::from(want), "lost-node line {l}");
                }
            }
        }
        w.check_all_parity();
    }

    #[test]
    fn double_loss_in_one_chunk_is_beyond_budget() {
        // 4 nodes, 3+1 parity: a single chunk. Any two losses overwhelm
        // every group — the engine must classify, not panic, and must not
        // have touched the memories.
        let mut w = World::new();
        let line = w.app_line(0);
        w.logged_write(0, line, LineData::fill(0x55));
        w.memories[1].destroy();
        w.memories[2].destroy();
        let err = recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                redundancy: &w.rdx,
                target_interval: 1,
                lost: &[NodeId(1), NodeId(2)],
            },
            &RecoveryTiming::derive(3, 2),
        )
        .unwrap_err();
        match err {
            RecoveryError::BeyondParityBudget { ref lost, .. } => {
                assert_eq!(lost, &[NodeId(1), NodeId(2)]);
            }
            other => panic!("expected BeyondParityBudget, got {other:?}"),
        }
        // The memories were left untouched: still marked lost.
        assert!(w.memories[1].is_lost());
        assert!(w.memories[2].is_lost());
    }

    /// Byte-compares every non-log, non-redundancy page of `nodes_to_check`
    /// against the reference snapshot.
    fn assert_restored(w: &World, reference: &[Vec<u8>], nodes_to_check: &[usize]) {
        let map = w.map();
        for &n in nodes_to_check {
            let log_pages: HashSet<PageAddr> =
                w.logs[n].slot_lines().iter().map(|s| s.page()).collect();
            for page in map.pages_of(NodeId::from(n)) {
                if log_pages.contains(&page) || w.rdx.is_redundancy_page(page) {
                    continue;
                }
                for l in page.lines() {
                    let got = read_global(&w.memories, &map, l);
                    let off = (map.local_line_index(l) * 64) as usize;
                    let want: [u8; 64] = reference[n][off..off + 64].try_into().unwrap();
                    assert_eq!(got, LineData::from(want), "node {n} line {l}");
                }
            }
        }
    }

    #[test]
    fn double_parity_recovers_two_losses_in_one_chunk() {
        // 4 nodes in a single P+Q chunk (G = 2). Losing any two nodes is
        // beyond the XOR budget but within P+Q's.
        let map = AddressMap::new(4, 4 * PAGE_SIZE as u64);
        let rdx = Redundancy::Double(DoubleParityMap::new(map, 2));
        let mut w = World::with_rdx(4, 4, rdx);
        let lines: Vec<LineAddr> = (0..4).map(|n| w.app_line(n)).collect();
        for (i, &l) in lines.iter().enumerate() {
            w.logged_write(0, l, LineData::fill(0x50 + i as u8));
        }
        let reference = w.snapshot();
        for (i, &l) in lines.iter().enumerate() {
            w.logged_write(1, l, LineData::fill(0x60 + i as u8));
        }
        w.check_all_parity();
        w.memories[1].destroy();
        w.memories[2].destroy();
        let report = recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                redundancy: &w.rdx,
                target_interval: 1,
                lost: &[NodeId(1), NodeId(2)],
            },
            &RecoveryTiming::derive(2, 2),
        )
        .unwrap();
        assert!(report.log_pages_rebuilt >= 2, "both lost logs rebuilt");
        assert_eq!(report.entries_replayed, 4);
        let map = w.map();
        for (i, &l) in lines.iter().enumerate() {
            assert_eq!(
                read_global(&w.memories, &map, l),
                LineData::fill(0x50 + i as u8),
                "line {l}"
            );
        }
        assert_restored(&w, &reference, &[0, 1, 2, 3]);
        w.check_all_parity();
    }

    #[test]
    fn double_parity_three_losses_are_beyond_budget() {
        let map = AddressMap::new(4, 4 * PAGE_SIZE as u64);
        let mut w = World::with_rdx(4, 4, Redundancy::Double(DoubleParityMap::new(map, 2)));
        let line = w.app_line(0);
        w.logged_write(0, line, LineData::fill(0x77));
        for n in [1, 2, 3] {
            w.memories[n].destroy();
        }
        let err = recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                redundancy: &w.rdx,
                target_interval: 1,
                lost: &[NodeId(1), NodeId(2), NodeId(3)],
            },
            &RecoveryTiming::derive(2, 1),
        )
        .unwrap_err();
        assert!(matches!(err, RecoveryError::BeyondParityBudget { .. }));
        assert!(w.memories[1].is_lost(), "memories untouched on refusal");
    }

    #[test]
    fn replication_recovers_two_losses_in_one_chunk() {
        // 9 nodes, k = 2 replication: chunks {0,1,2} … — losing two of a
        // chunk's three members still leaves one full copy of every page.
        let map = AddressMap::new(9, 6 * PAGE_SIZE as u64);
        let rdx = Redundancy::Replication(ReplicationMap::new(map, 2));
        let mut w = World::with_rdx(9, 6, rdx);
        let lines: Vec<LineAddr> = (0..9).map(|n| w.app_line(n)).collect();
        for (i, &l) in lines.iter().enumerate() {
            w.logged_write(0, l, LineData::fill(0x80 + i as u8));
        }
        let reference = w.snapshot();
        for (i, &l) in lines.iter().enumerate() {
            w.logged_write(1, l, LineData::fill(0x90 + i as u8));
        }
        w.check_all_parity();
        w.memories[0].destroy();
        w.memories[1].destroy();
        let report = recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                redundancy: &w.rdx,
                target_interval: 1,
                lost: &[NodeId(0), NodeId(1)],
            },
            &RecoveryTiming::derive(1, 7),
        )
        .unwrap();
        assert!(report.log_pages_rebuilt >= 2);
        assert_eq!(report.entries_replayed, 9);
        let map = w.map();
        for (i, &l) in lines.iter().enumerate() {
            assert_eq!(
                read_global(&w.memories, &map, l),
                LineData::fill(0x80 + i as u8),
                "line {l}"
            );
        }
        assert_restored(&w, &reference, &(0..9).collect::<Vec<_>>());
        w.check_all_parity();
    }

    #[test]
    fn replication_whole_chunk_loss_is_beyond_budget() {
        let map = AddressMap::new(9, 6 * PAGE_SIZE as u64);
        let mut w = World::with_rdx(9, 6, Redundancy::Replication(ReplicationMap::new(map, 2)));
        let line = w.app_line(3);
        w.logged_write(0, line, LineData::fill(0x13));
        for n in [0, 1, 2] {
            w.memories[n].destroy();
        }
        let err = recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                redundancy: &w.rdx,
                target_interval: 1,
                lost: &[NodeId(0), NodeId(1), NodeId(2)],
            },
            &RecoveryTiming::derive(1, 6),
        )
        .unwrap_err();
        assert!(matches!(err, RecoveryError::BeyondParityBudget { .. }));
    }

    #[test]
    fn bogus_damage_reports_are_classified() {
        let mut w = World::new();
        let intact = recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                redundancy: &w.rdx,
                target_interval: 1,
                lost: &[NodeId(2)],
            },
            &RecoveryTiming::derive(3, 3),
        )
        .unwrap_err();
        assert_eq!(intact, RecoveryError::LostNodeIntact { node: NodeId(2) });
        let unknown = recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                redundancy: &w.rdx,
                target_interval: 1,
                lost: &[NodeId(99)],
            },
            &RecoveryTiming::derive(3, 3),
        )
        .unwrap_err();
        assert_eq!(
            unknown,
            RecoveryError::UnknownNode {
                node: NodeId(99),
                nodes: 4
            }
        );
    }

    #[test]
    fn timing_model_scales() {
        let t = RecoveryTiming::derive(7, 15);
        assert!(t.page_rebuild > Ns::ZERO);
        assert!(t.entry_replay > Ns::ZERO);
        assert_eq!(t.hw_recovery, Ns::from_ms(50));
        // More data pages per group → slower rebuilds.
        let t2 = RecoveryTiming::derive(1, 15);
        assert!(t2.page_rebuild < t.page_rebuild);
    }

    #[test]
    fn report_unavailable_excludes_phase4() {
        let r = RecoveryReport {
            phase1: Ns(10),
            phase2: Ns(20),
            phase3: Ns(30),
            phase4: Ns(1000),
            ..RecoveryReport::default()
        };
        assert_eq!(r.unavailable(), Ns(60));
    }
}
