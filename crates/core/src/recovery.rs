//! Rollback recovery (Section 3.2.4, Figure 7).
//!
//! When an error is detected the machine runs four phases:
//!
//! 1. **Hardware recovery** — diagnosis, reconfiguration, protocol reset
//!    (outside the paper's scope; charged a fixed time, 50 ms on the real
//!    machine, from the Hive/FLASH measurements the paper cites).
//! 2. **Log reconstruction** — if a node's memory was lost, the pages
//!    holding its log are rebuilt from distributed parity so its log can be
//!    replayed.
//! 3. **Rollback** — every node replays its local log in reverse, restoring
//!    memory to the target checkpoint. Lost pages that receive restored data
//!    are rebuilt on demand first. Caches and directories are reset by the
//!    machine around this call. After this phase the machine is *available*
//!    again.
//! 4. **Background rebuild** — remaining lost pages and stale parity groups
//!    are reconstructed while the application runs degraded.
//!
//! The engine operates on the *functional* memory images, so tests can
//! verify value-exact restoration; phase timings come from an explicit
//! bandwidth model ([`RecoveryTiming`]) because recovery runs outside the
//! cycle-level simulation (the paper, likewise, reports recovery at
//! millisecond granularity).

use std::collections::HashSet;

use revive_mem::addr::{AddressMap, LineAddr, PageAddr, LINES_PER_PAGE};
use revive_mem::line::LineData;
use revive_mem::main_memory::NodeMemory;
use revive_sim::time::Ns;
use revive_sim::types::NodeId;

use crate::log::MemLog;
use crate::parity::ParityMap;

/// The bandwidth model for recovery timing.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryTiming {
    /// Phase 1: fixed hardware recovery time.
    pub hw_recovery: Ns,
    /// Cost to rebuild one 4 KB page from its parity group.
    pub page_rebuild: Ns,
    /// Cost to replay one log entry (read entry, write memory, update
    /// parity).
    pub entry_replay: Ns,
    /// Processors participating in parallel reconstruction.
    pub workers: usize,
}

impl RecoveryTiming {
    /// Derives costs from the machine's parameters: rebuilding a page
    /// fetches `G` remote pages (network-bound at ~3.2 bytes/ns plus DRAM
    /// row-streaming) and writes one; replaying an entry is a couple of
    /// local line accesses plus a parity update.
    pub fn derive(group_data_pages: usize, workers: usize) -> RecoveryTiming {
        assert!(workers > 0, "recovery needs at least one worker");
        let page_bytes = 4096u64;
        // Per remote page: network transfer + source DRAM streaming.
        let per_remote = Ns((page_bytes as f64 / 3.2) as u64) + Ns(64 * 20);
        let page_rebuild = per_remote * group_data_pages as u64 + Ns(64 * 20);
        RecoveryTiming {
            hw_recovery: Ns::from_ms(50),
            page_rebuild,
            entry_replay: Ns(3 * 60 + 46), // 3 line accesses + parity message
            workers,
        }
    }
}

/// Everything recovery needs to see and mutate.
pub struct RecoveryInput<'a> {
    /// Functional memory of every node.
    pub memories: &'a mut [NodeMemory],
    /// Every node's log (bookkeeping; contents are read from the memories).
    pub logs: &'a [&'a MemLog],
    /// The parity layout.
    pub parity: &'a ParityMap,
    /// Roll back to the state at the establishment of this checkpoint
    /// interval.
    pub target_interval: u64,
    /// The nodes whose memories were lost *simultaneously* (empty for
    /// transient errors). Duplicates are tolerated and count once.
    pub lost: &'a [NodeId],
}

/// Why recovery refused to run. These are *classified outcomes*, not bugs:
/// the machine reports the fault as unrecoverable (a detected-unrecoverable
/// error in the paper's Section 3.1.2 taxonomy) and the campaign counts it
/// in the availability statistics instead of aborting the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryError {
    /// Two or more simultaneously lost nodes share a parity group: N+1
    /// parity reconstructs at most one missing member per group, so the
    /// group's data is gone.
    BeyondParityBudget {
        /// The nodes lost together.
        lost: Vec<NodeId>,
        /// The parity page of a group with at least two lost members.
        group_parity: PageAddr,
    },
    /// A node was reported lost but its memory is intact — the damage report
    /// and the machine state disagree, and reconstructing over live data
    /// would corrupt it.
    LostNodeIntact {
        /// The allegedly lost node.
        node: NodeId,
    },
    /// A reported lost node does not exist in this machine.
    UnknownNode {
        /// The bogus node.
        node: NodeId,
        /// How many nodes the machine has.
        nodes: usize,
    },
    /// The surviving interconnect is partitioned: some surviving node
    /// cannot reach the rest, so the survivors cannot coordinate recovery
    /// (the paper's §3.3 assumes the fabric routes around the failure;
    /// when it cannot, the error is detected-unrecoverable, not a hang).
    Partitioned {
        /// A surviving node unreachable from the rest of the survivors.
        node: NodeId,
        /// Nodes still alive (including the isolated one).
        survivors: usize,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::BeyondParityBudget { lost, group_parity } => {
                let names: Vec<String> = lost.iter().map(NodeId::to_string).collect();
                write!(
                    f,
                    "losing nodes {{{}}} exceeds the parity budget: the group of parity page \
                     {group_parity} has at least two lost members",
                    names.join(", ")
                )
            }
            RecoveryError::LostNodeIntact { node } => {
                write!(f, "node {node} was reported lost but its memory is intact")
            }
            RecoveryError::UnknownNode { node, nodes } => {
                write!(
                    f,
                    "lost node {node} does not exist (machine has {nodes} nodes)"
                )
            }
            RecoveryError::Partitioned { node, survivors } => {
                write!(
                    f,
                    "surviving torus is partitioned: node {node} cannot reach the other \
                     {} survivor(s)",
                    survivors.saturating_sub(1)
                )
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// What recovery did and how long each phase took (Figures 7 and 12).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Phase 1 duration (fixed hardware recovery).
    pub phase1: Ns,
    /// Phase 2 duration (log-page reconstruction).
    pub phase2: Ns,
    /// Phase 3 duration (rollback).
    pub phase3: Ns,
    /// Phase 4 duration (background rebuild; machine is available).
    pub phase4: Ns,
    /// Log pages rebuilt in Phase 2.
    pub log_pages_rebuilt: u64,
    /// Lost pages rebuilt on demand during rollback.
    pub pages_rebuilt_on_demand: u64,
    /// Log entries replayed.
    pub entries_replayed: u64,
    /// Pages reconstructed in the background (Phase 4).
    pub pages_rebuilt_background: u64,
}

impl RecoveryReport {
    /// Machine-unavailable time: Phases 1–3 (Phase 4 runs concurrently with
    /// useful work).
    pub fn unavailable(&self) -> Ns {
        self.phase1 + self.phase2 + self.phase3
    }

    /// The Figure-7 phase decomposition as named `(name, start, end)`
    /// intervals relative to `origin` (the detection time). Phases 1–3 run
    /// back to back; phase 4 starts when the machine becomes available
    /// again and overlaps resumed execution.
    pub fn phases(&self, origin: Ns) -> [(&'static str, Ns, Ns); 4] {
        let p1 = origin + self.phase1;
        let p2 = p1 + self.phase2;
        let p3 = p2 + self.phase3;
        [
            ("hw_recovery", origin, p1),
            ("log_rebuild", p1, p2),
            ("rollback", p2, p3),
            ("bg_rebuild", p3, p3 + self.phase4),
        ]
    }
}

fn read_global(mems: &[NodeMemory], map: &AddressMap, line: LineAddr) -> LineData {
    mems[map.home_of_line(line).index()].read_line(map.local_line_index(line))
}

fn write_global(mems: &mut [NodeMemory], map: &AddressMap, line: LineAddr, data: LineData) {
    mems[map.home_of_line(line).index()].write_line(map.local_line_index(line), data);
}

/// Reconstructs `page` (data or parity) from the other members of its
/// group, writing the result into its (blank) home memory.
fn rebuild_page(mems: &mut [NodeMemory], parity: &ParityMap, page: PageAddr) {
    let map = parity.address_map();
    let group = parity.group_of(page);
    let sources: Vec<PageAddr> = std::iter::once(group.parity)
        .chain(group.data.iter().copied())
        .filter(|&p| p != page)
        .collect();
    for offset in 0..LINES_PER_PAGE {
        let mut acc = LineData::ZERO;
        for src in &sources {
            let line = LineAddr(src.first_line().0 + offset as u64);
            acc ^= read_global(mems, map, line);
        }
        let dst = LineAddr(page.first_line().0 + offset as u64);
        write_global(mems, map, dst, acc);
    }
}

/// Recomputes a parity page from its (intact) data pages.
fn recompute_parity(mems: &mut [NodeMemory], parity: &ParityMap, parity_page: PageAddr) {
    let map = parity.address_map();
    let data_pages = parity.data_pages_of(parity_page);
    for offset in 0..LINES_PER_PAGE {
        let mut acc = LineData::ZERO;
        for dp in &data_pages {
            acc ^= read_global(mems, map, LineAddr(dp.first_line().0 + offset as u64));
        }
        write_global(
            mems,
            map,
            LineAddr(parity_page.first_line().0 + offset as u64),
            acc,
        );
    }
}

/// Runs recovery (see module docs). The caller is responsible for wiping
/// caches, resetting directories, and restarting the ReVive hooks for a
/// fresh interval afterwards.
///
/// # Errors
///
/// Returns a [`RecoveryError`] — without touching any memory — when the
/// reported loss cannot be recovered from: a lost node that does not exist
/// or is not actually lost, or simultaneous losses that overwhelm a parity
/// group (beyond the N+1 budget).
pub fn recover(
    input: RecoveryInput<'_>,
    timing: &RecoveryTiming,
) -> Result<RecoveryReport, RecoveryError> {
    let RecoveryInput {
        memories,
        logs,
        parity,
        target_interval,
        lost,
    } = input;
    let map = *parity.address_map();
    // Validate the damage report before mutating anything, so an
    // unrecoverable loss is classified rather than half-reconstructed.
    let mut lost_nodes: Vec<NodeId> = Vec::new();
    for &l in lost {
        if l.index() >= memories.len() {
            return Err(RecoveryError::UnknownNode {
                node: l,
                nodes: memories.len(),
            });
        }
        if !memories[l.index()].is_lost() {
            return Err(RecoveryError::LostNodeIntact { node: l });
        }
        if !lost_nodes.contains(&l) {
            lost_nodes.push(l);
        }
    }
    let lost = &lost_nodes[..];
    if let Some(group) = parity.overwhelmed_group(lost) {
        return Err(RecoveryError::BeyondParityBudget {
            lost: lost.to_vec(),
            group_parity: group.parity,
        });
    }
    let mut report = RecoveryReport {
        phase1: timing.hw_recovery,
        ..RecoveryReport::default()
    };
    let mut rebuilt: HashSet<PageAddr> = HashSet::new();
    // Parity groups whose parity page could not be maintained during replay
    // (it was lost) and must be recomputed in Phase 4.
    let mut stale_parity: HashSet<PageAddr> = HashSet::new();

    // ---- Phase 2: reconstruct the lost nodes' log pages. (Within the
    // budget every rebuild source is intact: no two lost nodes share a
    // chunk, so node order does not matter.) ----
    for &l in lost {
        memories[l.index()].reconstruct_blank();
        let log_pages: HashSet<PageAddr> = logs[l.index()]
            .slot_lines()
            .iter()
            .map(|s| s.page())
            .collect();
        for page in log_pages {
            rebuild_page(memories, parity, page);
            rebuilt.insert(page);
            report.log_pages_rebuilt += 1;
        }
    }
    report.phase2 = timing.page_rebuild * report.log_pages_rebuilt.div_ceil(timing.workers as u64);

    // ---- Phase 3: replay every node's log in reverse. ----
    let mut max_node_time = Ns::ZERO;
    for (n, log) in logs.iter().enumerate() {
        let node = NodeId::from(n);
        let entries = log.rollback_entries(target_interval, |l| read_global(memories, &map, l));
        let mut node_time = Ns::ZERO;
        for e in entries {
            debug_assert_eq!(
                map.home_of_line(e.line),
                node,
                "log entries restore lines homed on their own node"
            );
            let page = e.line.page();
            if lost.contains(&node) && !rebuilt.contains(&page) {
                // Rebuild on demand: the rest of the page holds unmodified
                // checkpoint data that only parity can supply.
                rebuild_page(memories, parity, page);
                rebuilt.insert(page);
                report.pages_rebuilt_on_demand += 1;
                node_time += timing.page_rebuild;
            }
            let old = read_global(memories, &map, e.line);
            write_global(memories, &map.clone(), e.line, e.data);
            // Maintain parity across the restore write, exactly as the
            // hardware would; skip (and mark stale) when the parity page
            // died with the lost node.
            let ppage = parity.parity_page_of(page);
            if lost.contains(&map.home_of_page(ppage)) && !rebuilt.contains(&ppage) {
                stale_parity.insert(ppage);
            } else {
                let pline = parity.parity_line_of(e.line);
                let delta = old ^ e.data;
                let cur = read_global(memories, &map, pline);
                write_global(memories, &map.clone(), pline, cur ^ delta);
            }
            report.entries_replayed += 1;
            node_time += timing.entry_replay;
        }
        max_node_time = max_node_time.max(node_time);
    }
    report.phase3 = max_node_time;

    // ---- Phase 4: background reconstruction of everything still missing. ----
    for &l in lost {
        for page in map.pages_of(l) {
            if rebuilt.contains(&page) {
                continue;
            }
            if parity.is_parity_page(page) {
                recompute_parity(memories, parity, page);
            } else {
                rebuild_page(memories, parity, page);
            }
            rebuilt.insert(page);
            stale_parity.remove(&page);
            report.pages_rebuilt_background += 1;
        }
    }
    for ppage in stale_parity {
        recompute_parity(memories, parity, ppage);
        report.pages_rebuilt_background += 1;
    }
    let bg_workers = (timing.workers / 2).max(1) as u64;
    report.phase4 = timing.page_rebuild * report.pages_rebuilt_background.div_ceil(bg_workers);

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revive_coherence::port::MemPort;
    use revive_mem::addr::PAGE_SIZE;

    /// A tiny machine: `nodes` × 4 pages, G+1 parity, log in each node's
    /// last data page.
    struct World {
        nodes: usize,
        memories: Vec<NodeMemory>,
        logs: Vec<MemLog>,
        parity: ParityMap,
    }

    /// MemPort view over one node's memory for feeding the log.
    struct NodePort<'a> {
        mem: &'a mut NodeMemory,
        map: AddressMap,
    }

    impl MemPort for NodePort<'_> {
        fn read(&mut self, line: LineAddr) -> LineData {
            self.mem.read_line(self.map.local_line_index(line))
        }
        fn write(&mut self, line: LineAddr, data: LineData) {
            self.mem.write_line(self.map.local_line_index(line), data);
        }
    }

    impl World {
        fn new() -> World {
            World::with(4, 3)
        }

        fn with(nodes: usize, group_data_pages: usize) -> World {
            let map = AddressMap::new(nodes, 4 * PAGE_SIZE as u64);
            let parity = ParityMap::new(map, group_data_pages);
            let memories: Vec<NodeMemory> =
                (0..nodes).map(|_| NodeMemory::new(4 * PAGE_SIZE)).collect();
            let logs: Vec<MemLog> = (0..nodes)
                .map(|n| {
                    let node = NodeId::from(n);
                    // Pick the node's highest-stripe data page for the log.
                    let page = (0..4u64)
                        .rev()
                        .map(|s| map.global_page(node, s))
                        .find(|&p| !parity.is_parity_page(p))
                        .unwrap();
                    MemLog::new(node, page.lines().collect())
                })
                .collect();
            World {
                nodes,
                memories,
                logs,
                parity,
            }
        }

        fn map(&self) -> AddressMap {
            *self.parity.address_map()
        }

        /// A writable data line on `node` outside its log and parity pages.
        fn app_line(&self, node: u16) -> LineAddr {
            let map = self.map();
            let log_pages: HashSet<PageAddr> = self.logs[node as usize]
                .slot_lines()
                .iter()
                .map(|l| l.page())
                .collect();
            let page = map
                .pages_of(NodeId(node))
                .find(|&p| !self.parity.is_parity_page(p) && !log_pages.contains(&p))
                .unwrap();
            LineAddr(page.first_line().0 + 7)
        }

        /// Simulates the hardware write path: log the old value, write the
        /// new one, update both parities (data + log lines).
        fn logged_write(&mut self, interval: u64, line: LineAddr, new: LineData) {
            let map = self.map();
            let node = map.home_of_line(line);
            let old = self.memories[node.index()].read_line(map.local_line_index(line));
            let deltas = {
                let mut port = NodePort {
                    mem: &mut self.memories[node.index()],
                    map,
                };
                self.logs[node.index()].append(interval, line, old, true, &mut port)
            };
            // Apply log parity.
            for (slot, delta) in deltas {
                let pl = self.parity.parity_line_of(slot);
                let cur = read_global(&self.memories, &map, pl);
                write_global(&mut self.memories, &map, pl, cur ^ delta);
            }
            // Write data + its parity.
            write_global(&mut self.memories, &map, line, new);
            let pl = self.parity.parity_line_of(line);
            let cur = read_global(&self.memories, &map, pl);
            write_global(&mut self.memories, &map, pl, cur ^ (old ^ new));
        }

        fn check_all_parity(&self) {
            let map = self.map();
            for node in NodeId::all(self.nodes) {
                for page in map.pages_of(node) {
                    if self.parity.is_parity_page(page) {
                        continue;
                    }
                    let v = self
                        .parity
                        .check_group(page, |l| read_global(&self.memories, &map, l));
                    assert_eq!(v, None, "parity violated in group of {page}");
                }
            }
        }

        fn snapshot(&self) -> Vec<Vec<u8>> {
            self.memories.iter().map(NodeMemory::snapshot).collect()
        }

        fn timing(&self) -> RecoveryTiming {
            RecoveryTiming::derive(3, 3)
        }
    }

    #[test]
    fn rollback_restores_exact_checkpoint_no_loss() {
        let mut w = World::new();
        let line = w.app_line(1);
        w.logged_write(0, line, LineData::fill(1));
        // Checkpoint 1 established here — snapshot is the reference.
        let reference = w.snapshot();
        // Interval 1 modifications.
        let line2 = w.app_line(2);
        w.logged_write(1, line, LineData::fill(2));
        w.logged_write(1, line2, LineData::fill(3));
        w.check_all_parity();
        // Roll back to checkpoint 1.
        let timing = w.timing();
        let report = recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                parity: &w.parity,
                target_interval: 1,
                lost: &[],
            },
            &timing,
        )
        .unwrap();
        assert_eq!(report.entries_replayed, 2);
        assert_eq!(report.phase2, Ns::ZERO);
        let map = w.map();
        // Restored values match the checkpoint exactly.
        assert_eq!(read_global(&w.memories, &map, line), LineData::fill(1));
        assert_eq!(read_global(&w.memories, &map, line2), LineData::ZERO);
        // Full-memory comparison: every non-log page equals the reference.
        // (Log pages accumulated interval-1 records; they are reclaimed by
        // the next interval, not rolled back.)
        let log_pages: HashSet<PageAddr> = w
            .logs
            .iter()
            .flat_map(|l| l.slot_lines().iter().map(|s| s.page()))
            .collect();
        #[allow(clippy::needless_range_loop)] // node names both memories and reference
        for node in 0..4usize {
            for page in map.pages_of(NodeId::from(node)) {
                if log_pages.contains(&page) || w.parity.is_parity_page(page) {
                    continue;
                }
                for l in page.lines() {
                    let got = read_global(&w.memories, &map, l);
                    let want_off = (map.local_line_index(l) * 64) as usize;
                    let want: [u8; 64] =
                        reference[node][want_off..want_off + 64].try_into().unwrap();
                    assert_eq!(got, LineData::from(want), "line {l}");
                }
            }
        }
        w.check_all_parity();
    }

    #[test]
    fn node_loss_recovery_restores_checkpoint_and_parity() {
        let mut w = World::new();
        let lines: Vec<LineAddr> = (0..4).map(|n| w.app_line(n)).collect();
        for (i, &l) in lines.iter().enumerate() {
            w.logged_write(0, l, LineData::fill(0x10 + i as u8));
        }
        let reference = w.snapshot();
        // Interval 1 writes on every node.
        for (i, &l) in lines.iter().enumerate() {
            w.logged_write(1, l, LineData::fill(0x20 + i as u8));
        }
        w.check_all_parity();
        // Node 2 dies.
        w.memories[2].destroy();
        let timing = w.timing();
        let report = recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                parity: &w.parity,
                target_interval: 1,
                lost: &[NodeId(2)],
            },
            &timing,
        )
        .unwrap();
        assert!(report.log_pages_rebuilt > 0);
        assert_eq!(report.entries_replayed, 4);
        assert!(report.unavailable() > report.phase1);
        let map = w.map();
        // Every node, including the lost one, is back at the checkpoint.
        for (i, &l) in lines.iter().enumerate() {
            assert_eq!(
                read_global(&w.memories, &map, l),
                LineData::fill(0x10 + i as u8),
                "line {l}"
            );
        }
        // Full lost-node reconstruction: compare non-log pages byte-exact.
        let log_pages: HashSet<PageAddr> =
            w.logs[2].slot_lines().iter().map(|s| s.page()).collect();
        for page in map.pages_of(NodeId(2)) {
            if log_pages.contains(&page) || w.parity.is_parity_page(page) {
                continue;
            }
            for l in page.lines() {
                let got = read_global(&w.memories, &map, l);
                let off = (map.local_line_index(l) * 64) as usize;
                let want: [u8; 64] = reference[2][off..off + 64].try_into().unwrap();
                assert_eq!(got, LineData::from(want), "lost-node line {l}");
            }
        }
        // Phase 4 restored the global parity invariant.
        w.check_all_parity();
    }

    #[test]
    fn losing_the_parity_home_still_recovers() {
        let mut w = World::new();
        let map = w.map();
        let line = w.app_line(0);
        // Find the node holding this line's parity and kill that one.
        let pnode = map.home_of_page(w.parity.parity_page_of(line.page()));
        assert_ne!(pnode, NodeId(0));
        w.logged_write(0, line, LineData::fill(0xAA));
        w.logged_write(1, line, LineData::fill(0xBB));
        w.memories[pnode.index()].destroy();
        recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                parity: &w.parity,
                target_interval: 1,
                lost: &[pnode],
            },
            &RecoveryTiming::derive(3, 3),
        )
        .unwrap();
        assert_eq!(read_global(&w.memories, &map, line), LineData::fill(0xAA));
        w.check_all_parity();
    }

    #[test]
    fn double_loss_in_different_chunks_recovers() {
        // 8 nodes, 3+1 parity: chunks {0..3} and {4..7}. Losing one node
        // from each chunk costs every group at most one member, so both
        // nodes reconstruct.
        let mut w = World::with(8, 3);
        let lines: Vec<LineAddr> = (0..8).map(|n| w.app_line(n)).collect();
        for (i, &l) in lines.iter().enumerate() {
            w.logged_write(0, l, LineData::fill(0x30 + i as u8));
        }
        let reference = w.snapshot();
        for (i, &l) in lines.iter().enumerate() {
            w.logged_write(1, l, LineData::fill(0x40 + i as u8));
        }
        w.check_all_parity();
        w.memories[1].destroy();
        w.memories[5].destroy();
        let report = recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                parity: &w.parity,
                target_interval: 1,
                lost: &[NodeId(1), NodeId(5)],
            },
            &RecoveryTiming::derive(3, 6),
        )
        .unwrap();
        assert!(report.log_pages_rebuilt >= 2, "both logs rebuilt");
        let map = w.map();
        for (i, &l) in lines.iter().enumerate() {
            assert_eq!(
                read_global(&w.memories, &map, l),
                LineData::fill(0x30 + i as u8),
                "line {l}"
            );
        }
        // Both lost nodes restored byte-exact (outside their log pages).
        for lost in [1usize, 5] {
            let log_pages: HashSet<PageAddr> =
                w.logs[lost].slot_lines().iter().map(|s| s.page()).collect();
            for page in map.pages_of(NodeId::from(lost)) {
                if log_pages.contains(&page) || w.parity.is_parity_page(page) {
                    continue;
                }
                for l in page.lines() {
                    let got = read_global(&w.memories, &map, l);
                    let off = (map.local_line_index(l) * 64) as usize;
                    let want: [u8; 64] = reference[lost][off..off + 64].try_into().unwrap();
                    assert_eq!(got, LineData::from(want), "lost-node line {l}");
                }
            }
        }
        w.check_all_parity();
    }

    #[test]
    fn double_loss_in_one_chunk_is_beyond_budget() {
        // 4 nodes, 3+1 parity: a single chunk. Any two losses overwhelm
        // every group — the engine must classify, not panic, and must not
        // have touched the memories.
        let mut w = World::new();
        let line = w.app_line(0);
        w.logged_write(0, line, LineData::fill(0x55));
        w.memories[1].destroy();
        w.memories[2].destroy();
        let err = recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                parity: &w.parity,
                target_interval: 1,
                lost: &[NodeId(1), NodeId(2)],
            },
            &RecoveryTiming::derive(3, 2),
        )
        .unwrap_err();
        match err {
            RecoveryError::BeyondParityBudget { ref lost, .. } => {
                assert_eq!(lost, &[NodeId(1), NodeId(2)]);
            }
            other => panic!("expected BeyondParityBudget, got {other:?}"),
        }
        // The memories were left untouched: still marked lost.
        assert!(w.memories[1].is_lost());
        assert!(w.memories[2].is_lost());
    }

    #[test]
    fn bogus_damage_reports_are_classified() {
        let mut w = World::new();
        let intact = recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                parity: &w.parity,
                target_interval: 1,
                lost: &[NodeId(2)],
            },
            &RecoveryTiming::derive(3, 3),
        )
        .unwrap_err();
        assert_eq!(intact, RecoveryError::LostNodeIntact { node: NodeId(2) });
        let unknown = recover(
            RecoveryInput {
                memories: &mut w.memories,
                logs: &w.logs.iter().collect::<Vec<_>>(),
                parity: &w.parity,
                target_interval: 1,
                lost: &[NodeId(99)],
            },
            &RecoveryTiming::derive(3, 3),
        )
        .unwrap_err();
        assert_eq!(
            unknown,
            RecoveryError::UnknownNode {
                node: NodeId(99),
                nodes: 4
            }
        );
    }

    #[test]
    fn timing_model_scales() {
        let t = RecoveryTiming::derive(7, 15);
        assert!(t.page_rebuild > Ns::ZERO);
        assert!(t.entry_replay > Ns::ZERO);
        assert_eq!(t.hw_recovery, Ns::from_ms(50));
        // More data pages per group → slower rebuilds.
        let t2 = RecoveryTiming::derive(1, 15);
        assert!(t2.page_rebuild < t.page_rebuild);
    }

    #[test]
    fn report_unavailable_excludes_phase4() {
        let r = RecoveryReport {
            phase1: Ns(10),
            phase2: Ns(20),
            phase3: Ns(30),
            phase4: Ns(1000),
            ..RecoveryReport::default()
        };
        assert_eq!(r.unavailable(), Ns(60));
    }
}
