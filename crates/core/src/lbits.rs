//! The Logged (L) bits (Sections 3.2.2 and 4.1.2 of the paper).
//!
//! One L bit per home-memory line records whether the line has already been
//! logged in the current checkpoint interval, so each line is logged at most
//! once between checkpoints. The bits are gang-cleared when a checkpoint is
//! established.
//!
//! The paper notes the bits are an *optimization, not a correctness
//! requirement*: a design that keeps L bits only for lines present in a
//! directory cache occasionally loses a bit (logging the line again), which
//! wastes log space but never loses a checkpoint value — recovery replays
//! the log in reverse order, so the oldest (true checkpoint) value wins.
//! [`LBits::dir_cache`] models that cheaper design; property tests verify
//! that recovery is unaffected.

use std::collections::VecDeque;

/// The per-node L-bit store.
#[derive(Clone, Debug)]
pub struct LBits {
    bits: Vec<u64>,
    lines: u64,
    mode: Mode,
    /// How many times a set bit was lost to directory-cache eviction
    /// (each loss causes one redundant log entry later).
    pub evictions: u64,
}

#[derive(Clone, Debug)]
enum Mode {
    /// One bit per memory line (the paper's main design).
    Full,
    /// Bits live only while the line's directory entry is cached; a FIFO of
    /// at most `capacity` lines models the directory cache (Section 4.1.2).
    DirCache {
        capacity: usize,
        resident: VecDeque<u64>,
    },
}

impl LBits {
    /// Full L-bit array covering `lines` home-memory lines.
    pub fn full(lines: u64) -> LBits {
        LBits {
            bits: vec![0; lines.div_ceil(64) as usize],
            lines,
            mode: Mode::Full,
            evictions: 0,
        }
    }

    /// Directory-cache-limited L bits: at most `capacity` lines can hold a
    /// set bit simultaneously; setting more evicts the oldest (losing its
    /// bit).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn dir_cache(lines: u64, capacity: usize) -> LBits {
        assert!(capacity > 0, "directory cache needs capacity");
        LBits {
            bits: vec![0; lines.div_ceil(64) as usize],
            lines,
            mode: Mode::DirCache {
                capacity,
                resident: VecDeque::new(),
            },
            evictions: 0,
        }
    }

    /// Number of lines covered.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    fn index(&self, line: u64) -> (usize, u64) {
        assert!(line < self.lines, "L bit index {line} out of range");
        ((line / 64) as usize, 1u64 << (line % 64))
    }

    /// Whether the line is marked as already logged.
    pub fn is_logged(&self, line: u64) -> bool {
        let (w, m) = self.index(line);
        self.bits[w] & m != 0
    }

    /// Marks the line as logged. In directory-cache mode this may evict the
    /// oldest resident bit (which will cause a redundant-but-harmless log
    /// entry if that line is written again).
    pub fn set_logged(&mut self, line: u64) {
        let (w, m) = self.index(line);
        if self.bits[w] & m != 0 {
            return;
        }
        self.bits[w] |= m;
        if let Mode::DirCache { capacity, resident } = &mut self.mode {
            resident.push_back(line);
            if resident.len() > *capacity {
                let evicted = resident.pop_front().expect("nonempty");
                let (we, me) = ((evicted / 64) as usize, 1u64 << (evicted % 64));
                self.bits[we] &= !me;
                self.evictions += 1;
            }
        }
    }

    /// Clears every bit — the gang-clear performed when a new checkpoint is
    /// established.
    pub fn gang_clear(&mut self) {
        self.bits.fill(0);
        if let Mode::DirCache { resident, .. } = &mut self.mode {
            resident.clear();
        }
    }

    /// Number of currently set bits (lines logged this interval).
    pub fn count_set(&self) -> u64 {
        self.bits.iter().map(|w| w.count_ones() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_test() {
        let mut l = LBits::full(200);
        assert!(!l.is_logged(130));
        l.set_logged(130);
        assert!(l.is_logged(130));
        assert!(!l.is_logged(129));
        assert_eq!(l.count_set(), 1);
    }

    #[test]
    fn gang_clear_resets_all() {
        let mut l = LBits::full(100);
        for i in 0..100 {
            l.set_logged(i);
        }
        assert_eq!(l.count_set(), 100);
        l.gang_clear();
        assert_eq!(l.count_set(), 0);
        assert!(!l.is_logged(0));
    }

    #[test]
    fn idempotent_set() {
        let mut l = LBits::full(10);
        l.set_logged(3);
        l.set_logged(3);
        assert_eq!(l.count_set(), 1);
    }

    #[test]
    fn dir_cache_mode_loses_old_bits() {
        let mut l = LBits::dir_cache(100, 2);
        l.set_logged(1);
        l.set_logged(2);
        assert!(l.is_logged(1) && l.is_logged(2));
        l.set_logged(3); // evicts 1
        assert!(!l.is_logged(1));
        assert!(l.is_logged(2) && l.is_logged(3));
        assert_eq!(l.evictions, 1);
    }

    #[test]
    fn dir_cache_re_set_after_eviction_works() {
        let mut l = LBits::dir_cache(100, 1);
        l.set_logged(1);
        l.set_logged(2); // evicts 1
        l.set_logged(1); // evicts 2
        assert!(l.is_logged(1));
        assert!(!l.is_logged(2));
        assert_eq!(l.evictions, 2);
    }

    #[test]
    fn dir_cache_gang_clear_empties_fifo() {
        let mut l = LBits::dir_cache(100, 2);
        l.set_logged(1);
        l.set_logged(2);
        l.gang_clear();
        assert_eq!(l.count_set(), 0);
        // Setting after clear does not phantom-evict.
        l.set_logged(5);
        l.set_logged(6);
        assert_eq!(l.evictions, 0);
        assert_eq!(l.count_set(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let l = LBits::full(10);
        let _ = l.is_logged(10);
    }
}
