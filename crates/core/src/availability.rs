//! Availability arithmetic (Sections 3.3.2 and 6.3).
//!
//! The machine's availability is `A = (T_E − T_U) / T_E`, where `T_E` is the
//! mean time between errors and `T_U` the unavailable time per error. The
//! unavailable time decomposes into lost work (up to one checkpoint interval
//! plus the error-detection latency), hardware recovery (Phase 1), log
//! reconstruction (Phase 2, only when memory was lost), and rollback
//! (Phase 3). Phase 4 (background parity-group rebuilding) does *not* count
//! as unavailability: the machine is running, merely degraded.

use revive_sim::time::Ns;

/// Inputs to the availability model for one error scenario.
#[derive(Clone, Copy, Debug)]
pub struct AvailabilityModel {
    /// Checkpoint interval of the *real* machine being modeled.
    pub checkpoint_interval: Ns,
    /// Worst-case error-detection latency (80 ms in the paper's scenario).
    pub detection_latency: Ns,
    /// Phase 1: hardware diagnosis/reconfiguration (50 ms, from Hive/FLASH).
    pub hw_recovery: Ns,
    /// Phase 2: rebuilding the lost node's log pages (zero when memory
    /// survived).
    pub phase2: Ns,
    /// Phase 3: rollback via the logs.
    pub phase3: Ns,
}

impl AvailabilityModel {
    /// Lost work when the error strikes just before the next checkpoint
    /// (worst case): a full interval plus the detection latency.
    pub fn worst_lost_work(&self) -> Ns {
        self.checkpoint_interval + self.detection_latency
    }

    /// Lost work for an error half-way into the interval (average case).
    pub fn average_lost_work(&self) -> Ns {
        self.checkpoint_interval / 2 + self.detection_latency
    }

    /// Worst-case unavailable time per error.
    pub fn worst_unavailable(&self) -> Ns {
        self.worst_lost_work() + self.hw_recovery + self.phase2 + self.phase3
    }

    /// Average-case unavailable time per error.
    pub fn average_unavailable(&self) -> Ns {
        self.average_lost_work() + self.hw_recovery + self.phase2 + self.phase3
    }

    /// Availability given a mean time between errors, using the worst-case
    /// unavailable time.
    ///
    /// # Panics
    ///
    /// Panics if `mtbe` is zero.
    pub fn availability_worst(&self, mtbe: Ns) -> f64 {
        Self::availability_from(self.worst_unavailable(), mtbe)
    }

    /// Availability given a mean time between errors, using the average
    /// unavailable time.
    ///
    /// # Panics
    ///
    /// Panics if `mtbe` is zero.
    pub fn availability_average(&self, mtbe: Ns) -> f64 {
        Self::availability_from(self.average_unavailable(), mtbe)
    }

    fn availability_from(unavailable: Ns, mtbe: Ns) -> f64 {
        assert!(mtbe > Ns::ZERO, "mean time between errors must be positive");
        let tu = unavailable.0 as f64;
        let te = mtbe.0 as f64;
        ((te - tu) / te).max(0.0)
    }
}

/// Monte-Carlo estimate of availability: errors arrive as a Poisson
/// process with mean inter-arrival `mtbe`; each error lands uniformly at
/// random within a checkpoint interval, losing the work since the last
/// commit plus the detection latency, then pays the model's recovery
/// phases. Complements the closed-form [`AvailabilityModel`] figures
/// (whose average case pins the error to mid-interval) with
/// distributional ones.
///
/// Returns `(availability, errors_simulated)`.
///
/// # Panics
///
/// Panics if `mtbe` or `horizon` is zero.
pub fn monte_carlo_availability(
    model: &AvailabilityModel,
    mtbe: Ns,
    horizon: Ns,
    seed: u64,
) -> (f64, u64) {
    assert!(mtbe > Ns::ZERO && horizon > Ns::ZERO, "need positive times");
    let mut rng = revive_sim::rng::DetRng::seed(seed);
    let mut t = 0.0f64;
    let mut down = 0.0f64;
    let mut errors = 0u64;
    let horizon_ns = horizon.0 as f64;
    loop {
        // Exponential inter-arrival via inverse CDF.
        let u = rng.unit().max(1e-12);
        t += -(u.ln()) * mtbe.0 as f64;
        if t >= horizon_ns {
            break;
        }
        errors += 1;
        // Where in the checkpoint interval did the error land?
        let phase = rng.unit();
        let lost_work =
            phase * model.checkpoint_interval.0 as f64 + model.detection_latency.0 as f64;
        let outage = lost_work + (model.hw_recovery + model.phase2 + model.phase3).0 as f64;
        down += outage;
    }
    (((horizon_ns - down) / horizon_ns).max(0.0), errors)
}

/// Graceful-degradation accounting for a fault campaign: how many scenarios
/// recovered, how many were classified unrecoverable, and what the measured
/// outage time was. Unrecoverable scenarios are *counted* — the whole point
/// of typed recovery errors is that a beyond-budget fault becomes a line in
/// these statistics instead of a process abort.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutcomeTally {
    /// Scenarios where every injected fault was recovered.
    pub recovered: u64,
    /// Scenarios that ended in a classified unrecoverable outcome.
    pub unrecoverable: u64,
    /// Scenarios whose injection point was never reached (the run finished
    /// first); they contribute uptime but no outage.
    pub not_fired: u64,
    /// Total unavailable time across recovered scenarios (lost work plus
    /// recovery Phases 1–3, summed over every recovery).
    pub unavailable_total: Ns,
    /// The single worst per-scenario unavailable time observed.
    pub unavailable_max: Ns,
}

impl OutcomeTally {
    /// Records a scenario whose faults were all recovered, with its total
    /// unavailable time.
    pub fn record_recovered(&mut self, unavailable: Ns) {
        self.recovered += 1;
        self.unavailable_total += unavailable;
        self.unavailable_max = self.unavailable_max.max(unavailable);
    }

    /// Records a scenario that ended unrecoverable.
    pub fn record_unrecoverable(&mut self) {
        self.unrecoverable += 1;
    }

    /// Records a scenario whose injection never fired.
    pub fn record_not_fired(&mut self) {
        self.not_fired += 1;
    }

    /// Total scenarios tallied.
    pub fn scenarios(&self) -> u64 {
        self.recovered + self.unrecoverable + self.not_fired
    }

    /// Measured availability when each scenario represents one error per
    /// `horizon` of operation: recovered scenarios are down for their
    /// unavailable time, unrecoverable ones for the whole horizon (the
    /// machine is lost until repaired out-of-band). Returns 1.0 for an
    /// empty tally.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero, or shorter than the worst observed
    /// outage (the model would go negative).
    pub fn availability(&self, horizon: Ns) -> f64 {
        assert!(horizon > Ns::ZERO, "horizon must be positive");
        assert!(
            horizon >= self.unavailable_max,
            "horizon {horizon} is shorter than the worst outage {}",
            self.unavailable_max
        );
        let n = self.scenarios();
        if n == 0 {
            return 1.0;
        }
        let total = horizon.0 as f64 * n as f64;
        let down = self.unavailable_total.0 as f64 + horizon.0 as f64 * self.unrecoverable as f64;
        ((total - down) / total).clamp(0.0, 1.0)
    }

    /// Scenarios in which a fault actually fired (recovered or not); the
    /// denominator of the derived MTBF/MTTR figures.
    pub fn faults(&self) -> u64 {
        self.recovered + self.unrecoverable
    }

    /// Derived mean time between failures when each tallied scenario
    /// represents one `horizon` of operation: total operating time divided
    /// by the number of faults that fired. `None` when no fault ever fired
    /// (MTBF is unbounded).
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn mtbf(&self, horizon: Ns) -> Option<Ns> {
        assert!(horizon > Ns::ZERO, "horizon must be positive");
        let faults = self.faults();
        if faults == 0 {
            return None;
        }
        Some(Ns(horizon.0.saturating_mul(self.scenarios()) / faults))
    }

    /// Derived mean time to repair across *recovered* faults: the mean
    /// measured outage. Unrecoverable faults have no repair time inside the
    /// model (the machine is lost until replaced out-of-band), so they are
    /// excluded here and accounted by [`OutcomeTally::availability`]
    /// instead. `None` when nothing was recovered.
    pub fn mttr(&self) -> Option<Ns> {
        if self.recovered == 0 {
            return None;
        }
        Some(Ns(self.unavailable_total.0 / self.recovered))
    }

    /// Downtime-based availability over an explicitly measured operating
    /// time, `uptime / total`: use this when the tally accumulates outages
    /// from one long serving run of length `total_time` (the SLO ledger's
    /// accounting) rather than one fault per scenario-horizon. Recovered
    /// outages count their measured unavailable time; any unrecoverable
    /// fault zeroes availability (the serving run never came back).
    ///
    /// # Panics
    ///
    /// Panics if `total_time` is zero or shorter than the accumulated
    /// downtime.
    pub fn availability_from_downtime(&self, total_time: Ns) -> f64 {
        assert!(total_time > Ns::ZERO, "total time must be positive");
        assert!(
            total_time >= self.unavailable_total,
            "total time {total_time} is shorter than the accumulated downtime {}",
            self.unavailable_total
        );
        if self.unrecoverable > 0 {
            return 0.0;
        }
        (total_time.0 - self.unavailable_total.0) as f64 / total_time.0 as f64
    }
}

/// Renders an availability as "count of nines" (0.99999 → 5.0); useful for
/// the paper's "better than 99.999 %" claims.
pub fn nines(availability: f64) -> f64 {
    if availability >= 1.0 {
        f64::INFINITY
    } else if availability <= 0.0 {
        0.0
    } else {
        -(1.0 - availability).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Section 3.3.2 scenario: 100 ms checkpoints, 80 ms
    /// detection, 50 ms hardware recovery, ~100 ms Phase 2, ~490 ms Phase 3.
    fn paper_worst_case() -> AvailabilityModel {
        AvailabilityModel {
            checkpoint_interval: Ns::from_ms(100),
            detection_latency: Ns::from_ms(80),
            hw_recovery: Ns::from_ms(50),
            phase2: Ns::from_ms(100),
            phase3: Ns::from_ms(490),
        }
    }

    #[test]
    fn worst_case_matches_paper_820ms() {
        let m = paper_worst_case();
        assert_eq!(m.worst_lost_work(), Ns::from_ms(180));
        // 180 + 50 + 100 + 490 = 820 ms — the paper's headline number.
        assert_eq!(m.worst_unavailable(), Ns::from_ms(820));
    }

    #[test]
    fn availability_exceeds_five_nines_at_one_error_per_day() {
        let m = paper_worst_case();
        let day = Ns::from_secs(86_400);
        let a = m.availability_worst(day);
        assert!(a > 0.99999, "availability {a}");
        assert!(nines(a) > 5.0);
    }

    #[test]
    fn cache_only_error_is_faster() {
        // No memory loss: phase 2 vanishes, phase 3 shrinks; the paper
        // reports ~250 ms average unavailability.
        let m = AvailabilityModel {
            checkpoint_interval: Ns::from_ms(100),
            detection_latency: Ns::from_ms(80),
            hw_recovery: Ns::from_ms(50),
            phase2: Ns::ZERO,
            phase3: Ns::from_ms(70),
        };
        let avg = m.average_unavailable();
        assert!(avg < Ns::from_ms(260), "avg={avg}");
        let a = m.availability_average(Ns::from_secs(86_400));
        assert!(a > 0.999_99);
    }

    #[test]
    fn monte_carlo_matches_closed_form() {
        let m = paper_worst_case();
        let day = Ns::from_secs(86_400);
        let year = Ns::from_secs(86_400 * 365);
        let (a, errors) = monte_carlo_availability(&m, day, year, 42);
        // ~365 errors expected; availability near the closed-form average.
        assert!((250..480).contains(&errors), "errors={errors}");
        let closed = m.availability_average(day);
        assert!((a - closed).abs() < 2e-5, "mc={a} closed={closed}");
        // Deterministic for a given seed.
        assert_eq!(monte_carlo_availability(&m, day, year, 42).0, a);
    }

    #[test]
    fn nines_conversions() {
        assert!((nines(0.99999) - 5.0).abs() < 1e-9);
        assert!((nines(0.999) - 3.0).abs() < 1e-9);
        assert_eq!(nines(1.0), f64::INFINITY);
        assert_eq!(nines(0.0), 0.0);
    }

    #[test]
    fn zero_availability_floor() {
        let m = paper_worst_case();
        // MTBE shorter than the outage: availability clamps at 0.
        assert_eq!(m.availability_worst(Ns::from_ms(100)), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_mtbe_panics() {
        paper_worst_case().availability_worst(Ns::ZERO);
    }

    #[test]
    fn tally_counts_and_availability() {
        let mut t = OutcomeTally::default();
        assert_eq!(t.availability(Ns::from_secs(1)), 1.0);
        t.record_recovered(Ns::from_ms(800));
        t.record_recovered(Ns::from_ms(200));
        t.record_not_fired();
        assert_eq!(t.scenarios(), 3);
        assert_eq!(t.unavailable_total, Ns::from_ms(1000));
        assert_eq!(t.unavailable_max, Ns::from_ms(800));
        // 1 s down over 3 days of modeled operation.
        let day = Ns::from_secs(86_400);
        let a = t.availability(day);
        assert!((a - (1.0 - 1.0 / (3.0 * 86_400.0))).abs() < 1e-12);
        // An unrecoverable scenario costs a full horizon of downtime.
        t.record_unrecoverable();
        let a2 = t.availability(day);
        assert!(a2 < 0.76, "availability {a2}");
        assert!(a2 > 0.74, "availability {a2}");
    }

    #[test]
    #[should_panic(expected = "shorter than the worst outage")]
    fn tally_rejects_too_short_horizon() {
        let mut t = OutcomeTally::default();
        t.record_recovered(Ns::from_secs(2));
        let _ = t.availability(Ns::from_secs(1));
    }

    #[test]
    fn tally_derives_mtbf_and_mttr() {
        let day = Ns::from_secs(86_400);
        let mut t = OutcomeTally::default();
        // No faults yet: MTBF unbounded, MTTR undefined.
        assert_eq!(t.mtbf(day), None);
        assert_eq!(t.mttr(), None);
        t.record_recovered(Ns::from_ms(800));
        t.record_recovered(Ns::from_ms(200));
        t.record_not_fired();
        t.record_not_fired();
        // 4 scenario-days of operation, 2 faults → MTBF of 2 days.
        assert_eq!(t.mtbf(day), Some(Ns::from_secs(2 * 86_400)));
        // Mean measured outage: (800 + 200) / 2 ms.
        assert_eq!(t.mttr(), Some(Ns::from_ms(500)));
        // An unrecoverable fault shortens MTBF but not MTTR (no repair).
        t.record_unrecoverable();
        assert_eq!(t.faults(), 3);
        assert_eq!(t.mtbf(day), Some(Ns(day.0 * 5 / 3)));
        assert_eq!(t.mttr(), Some(Ns::from_ms(500)));
    }

    #[test]
    fn tally_downtime_availability() {
        let mut t = OutcomeTally::default();
        // Empty tally: fully available over any measured run.
        assert_eq!(t.availability_from_downtime(Ns::from_secs(1)), 1.0);
        t.record_recovered(Ns::from_ms(250));
        t.record_recovered(Ns::from_ms(750));
        // One simulated second down over 100 s of serving.
        let a = t.availability_from_downtime(Ns::from_secs(100));
        assert!((a - 0.99).abs() < 1e-12, "availability {a}");
        // Consistency with the scenario-horizon model at one scenario: both
        // charge the measured outage against the operating time.
        let mut one = OutcomeTally::default();
        one.record_recovered(Ns::from_secs(1));
        assert!(
            (one.availability(Ns::from_secs(100))
                - one.availability_from_downtime(Ns::from_secs(100)))
            .abs()
                < 1e-12
        );
        // An unrecoverable fault in a measured run means it never came back.
        t.record_unrecoverable();
        assert_eq!(t.availability_from_downtime(Ns::from_secs(100)), 0.0);
    }

    #[test]
    #[should_panic(expected = "shorter than the accumulated downtime")]
    fn downtime_rejects_too_short_total() {
        let mut t = OutcomeTally::default();
        t.record_recovered(Ns::from_secs(2));
        let _ = t.availability_from_downtime(Ns::from_secs(1));
    }
}
