//! The ReVive directory-controller extension (Sections 3.2 and 4.1).
//!
//! [`ReviveHook`] implements the coherence layer's
//! [`WriteHook`] seam and performs, in the
//! "hardware background", exactly what the paper's extended directory
//! controller does:
//!
//! * **Logging** — on the first write intent or write-back of a line since
//!   the last checkpoint (L bit clear), the line's checkpoint contents are
//!   copied to the node's memory log (Figure 5).
//! * **Distributed redundancy** — every memory write (data or log) is
//!   expanded by the active [`Redundancy`] backend into one or more update
//!   messages (Figure 4): an XOR delta to the parity home for the paper's
//!   N+1 parity, a delta each to the P and Q homes for double parity (the
//!   Q delta pre-scaled in GF(256), so the destination still just XORs),
//!   or the new value to each replica home for mirroring/replication —
//!   saving the reads.
//!
//! Each redundancy-update message contributes one *hook ack* to the line's
//! directory entry: the entry stays Busy until the update is acknowledged,
//! which is what serializes racing transactions against in-flight log/parity
//! state (the race-freedom arguments of Section 4.2).
//!
//! The hook also keeps the paper-granularity cost accounting of **Table 1**
//! in [`CostStats`], independent of the functional access counts (this
//! implementation's log records take two lines where the paper's take one;
//! Table 1 is reproduced with the paper's own counting conventions).

use revive_coherence::hook::WriteHook;
use revive_coherence::port::MemPort;
use revive_mem::addr::{AddressMap, LineAddr};
use revive_mem::line::LineData;
use revive_sim::types::NodeId;

use crate::lbits::LBits;
use crate::log::MemLog;
use crate::parity::ParityUpdate;
use crate::redundancy::{Redundancy, RedundancyBackend};
use crate::validate::ShadowLog;

/// Per-event costs as Table 1 reports them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCost {
    /// Extra memory accesses per event.
    pub mem_accesses: u64,
    /// Extra memory lines touched per event.
    pub lines: u64,
    /// Extra network messages per event.
    pub messages: u64,
}

/// Table 1, row "Write-back, already logged (L=1)": update data parity.
pub const COST_WB_LOGGED: EventCost = EventCost {
    mem_accesses: 3,
    lines: 1,
    messages: 2,
};
/// Table 1, rows "Read-exclusive or upgrade, not yet logged (L=0)":
/// copy data to log (1/1/0) + update log parity (3/1/2).
pub const COST_RDX_UNLOGGED: EventCost = EventCost {
    mem_accesses: 4,
    lines: 2,
    messages: 2,
};
/// Table 1, rows "Write-back, not yet logged (L=0)": copy to log (2/1/0) +
/// update log parity (3/1/2) + update data parity (3/1/2).
pub const COST_WB_UNLOGGED: EventCost = EventCost {
    mem_accesses: 8,
    lines: 3,
    messages: 4,
};

/// Event counts per Table 1 class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostStats {
    /// Write-backs whose line was already logged (Figure 4).
    pub wb_logged: u64,
    /// Read-exclusive/upgrade intents that logged the line (Figure 5a).
    pub rdx_unlogged: u64,
    /// Write-backs that had to log first (Figure 5b).
    pub wb_unlogged: u64,
    /// Write intents that found the L bit already set (no action).
    pub intents_already_logged: u64,
}

impl CostStats {
    /// Total extra memory accesses under the paper's counting conventions.
    pub fn paper_mem_accesses(&self) -> u64 {
        self.wb_logged * COST_WB_LOGGED.mem_accesses
            + self.rdx_unlogged * COST_RDX_UNLOGGED.mem_accesses
            + self.wb_unlogged * COST_WB_UNLOGGED.mem_accesses
    }

    /// Total extra network messages under the paper's counting conventions.
    pub fn paper_messages(&self) -> u64 {
        self.wb_logged * COST_WB_LOGGED.messages
            + self.rdx_unlogged * COST_RDX_UNLOGGED.messages
            + self.wb_unlogged * COST_WB_UNLOGGED.messages
    }
}

/// An outbound redundancy-update message queued by the hook.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutMsg {
    /// Destination (the parity / replica home).
    pub to: NodeId,
    /// The update to apply there.
    pub update: ParityUpdate,
    /// Whether the destination applies deltas by XOR (parity) or overwrite
    /// (mirroring, replication) — affects the memory accesses charged at
    /// the destination.
    pub mirror: bool,
}

/// The ReVive extension state of one node's directory controller.
#[derive(Debug)]
pub struct ReviveHook {
    map: AddressMap,
    rdx: Redundancy,
    /// The Logged bits for this node's home lines.
    pub lbits: LBits,
    /// This node's memory log.
    pub log: MemLog,
    /// Whether the log region's redundancy updates carry values rather than
    /// deltas (it must be uniform; asserted at construction).
    log_stores_values: bool,
    interval: u64,
    enabled: bool,
    outbox: Vec<OutMsg>,
    /// Table 1 event accounting.
    pub costs: CostStats,
    /// Optional software replica of the log, fed every append, marker,
    /// reclaim, and reset — the validation harness's scan/replay oracle.
    pub shadow: Option<ShadowLog>,
}

impl ReviveHook {
    /// Creates the extension for one node.
    ///
    /// # Panics
    ///
    /// Panics if the log region straddles the mirrored/parity boundary of a
    /// mixed layout (log records must use one update mode).
    pub fn new(rdx: Redundancy, log: MemLog, lbits: LBits) -> ReviveHook {
        let modes: std::collections::HashSet<bool> = log
            .slot_lines()
            .iter()
            .map(|l| rdx.stores_values(l.page()))
            .collect();
        assert!(
            modes.len() == 1,
            "log region straddles the mirrored/parity boundary"
        );
        let log_stores_values = modes.into_iter().next().expect("nonempty log");
        ReviveHook {
            map: *rdx.address_map(),
            rdx,
            lbits,
            log,
            log_stores_values,
            interval: 0,
            enabled: true,
            outbox: Vec::new(),
            costs: CostStats::default(),
            shadow: None,
        }
    }

    /// Attaches a fresh shadow replica sized to the log. Every subsequent
    /// log mutation routed through the hook is mirrored into it.
    pub fn attach_shadow(&mut self) {
        self.shadow = Some(ShadowLog::new(self.log.capacity_records()));
    }

    /// The current checkpoint interval id.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Queued parity-update messages, drained by the machine after each
    /// directory-controller call.
    pub fn drain_outbox(&mut self) -> Vec<OutMsg> {
        std::mem::take(&mut self.outbox)
    }

    /// Swaps the outbox into `buf` (which must be empty): the queued
    /// messages land in `buf` and the outbox adopts its capacity, so a
    /// caller cycling one scratch buffer never re-allocates.
    pub fn take_outbox_into(&mut self, buf: &mut Vec<OutMsg>) {
        debug_assert!(buf.is_empty());
        std::mem::swap(&mut self.outbox, buf);
    }

    /// Pauses/resumes the hook (recovery replays memory without re-logging).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the hook is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The redundancy backend this hook maintains.
    pub fn redundancy(&self) -> &Redundancy {
        &self.rdx
    }

    /// Writes the checkpoint-commit marker for `interval` into the local log
    /// (between the two commit barriers), with its redundancy update.
    pub fn mark_checkpoint(&mut self, interval: u64, mem: &mut dyn MemPort) {
        let stores = self.log_stores_values;
        let deltas = self.log.mark_checkpoint(interval, !stores, mem);
        if let Some(s) = self.shadow.as_mut() {
            s.record_marker(interval);
        }
        self.ship_deltas(None, deltas, stores);
    }

    /// Starts a new checkpoint interval: gang-clears the L bits and reclaims
    /// log space from intervals older than `reclaim_before`.
    pub fn begin_interval(&mut self, interval: u64, reclaim_before: u64) {
        self.interval = interval;
        self.lbits.gang_clear();
        self.log.reclaim_before(reclaim_before);
        if let Some(s) = self.shadow.as_mut() {
            s.reclaim_before(reclaim_before);
        }
    }

    /// Drops the oldest half of the live records (the CpInf measurement
    /// configurations' pressure valve), keeping the shadow in step.
    pub fn recycle_oldest_half(&mut self) {
        self.log.reclaim_oldest_half();
        if let Some(s) = self.shadow.as_mut() {
            s.reclaim_oldest_half();
        }
    }

    /// Forgets all log bookkeeping (after a rollback's log scrub), keeping
    /// the shadow in step.
    pub fn reset_log(&mut self) {
        self.log.reset();
        if let Some(s) = self.shadow.as_mut() {
            s.reset();
        }
    }

    /// Expands `(line, payload)` pairs through the backend, groups the
    /// resulting redundancy-line updates by home, and queues one update
    /// message per home. Returns the number of messages queued (= hook acks
    /// to await when `ack_to` is set).
    fn ship_deltas(
        &mut self,
        ack_to: Option<LineAddr>,
        deltas: Vec<(LineAddr, LineData)>,
        stores_values: bool,
    ) -> u32 {
        let mut msgs: Vec<OutMsg> = Vec::new();
        for (line, payload) in deltas {
            for (rline, rpayload) in self.rdx.expand_update(line, payload) {
                let home = self.map.home_of_line(rline);
                match msgs.iter_mut().find(|m| m.to == home) {
                    Some(m) => m.update.deltas.push((rline, rpayload)),
                    None => msgs.push(OutMsg {
                        to: home,
                        update: ParityUpdate {
                            ack_to_line: ack_to,
                            deltas: vec![(rline, rpayload)],
                        },
                        mirror: stores_values,
                    }),
                }
            }
        }
        let n = msgs.len() as u32;
        self.outbox.extend(msgs);
        n
    }

    /// Copies `old` (the checkpoint contents of `line`) into the log and
    /// queues the log-redundancy updates. Returns the acks to await.
    fn log_line(&mut self, line: LineAddr, old: LineData, mem: &mut dyn MemPort) -> u32 {
        let stores = self.log_stores_values;
        let deltas = self.log.append(self.interval, line, old, !stores, mem);
        if let Some(s) = self.shadow.as_mut() {
            s.record_append(self.interval, line, old);
        }
        let acks = self.ship_deltas(Some(line), deltas, stores);
        self.lbits.set_logged(self.map.local_line_index(line));
        acks
    }
}

impl WriteHook for ReviveHook {
    fn write_intent(
        &mut self,
        line: LineAddr,
        current: Option<LineData>,
        mem: &mut dyn MemPort,
    ) -> u32 {
        if !self.enabled {
            return 0;
        }
        debug_assert!(
            !self.rdx.is_redundancy_page(line.page()),
            "coherent write intent on a redundancy page"
        );
        if self.lbits.is_logged(self.map.local_line_index(line)) {
            self.costs.intents_already_logged += 1;
            return 0;
        }
        // Figure 5(a): copy the line to the log in the background while the
        // reply is supplied; the entry stays busy until the log parity is
        // acknowledged. When the directory already read the line for its
        // reply, the copy shares that read (Table 1's 1-access "copy data
        // to log").
        let old = current.unwrap_or_else(|| mem.read(line));
        let acks = self.log_line(line, old, mem);
        self.costs.rdx_unlogged += 1;
        acks
    }

    fn memory_write(&mut self, line: LineAddr, new: LineData, mem: &mut dyn MemPort) -> u32 {
        if !self.enabled {
            return 0;
        }
        debug_assert!(
            !self.rdx.is_redundancy_page(line.page()),
            "coherent write-back to a redundancy page"
        );
        let stores = self.rdx.stores_values(line.page());
        let mut acks = 0;
        let first = !self.lbits.is_logged(self.map.local_line_index(line));
        // With value-carrying updates (mirroring, replication) and the line
        // already logged, the old contents are not needed (the copies are
        // simply overwritten): Section 3.2.1, "the two memory reads and the
        // XOR operations can be omitted".
        let old = if first || !stores {
            Some(mem.read(line))
        } else {
            None
        };
        if first {
            // Figure 5(b): the line was never announced (uncached write or
            // silent E→M): log it as part of this transaction.
            acks += self.log_line(line, old.expect("read when first"), mem);
            self.costs.wb_unlogged += 1;
        } else {
            self.costs.wb_logged += 1;
        }
        // Data parity update U = D ^ D' (Figure 4); value backends ship D'.
        let payload = if stores {
            new
        } else {
            old.expect("read in parity mode") ^ new
        };
        acks += self.ship_deltas(Some(line), vec![(line, payload)], stores);
        acks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parity::ParityMap;
    use crate::redundancy::{gf_pow, gf_scale, DoubleParityMap, ReplicationMap};
    use revive_coherence::port::VecPort;
    use revive_mem::addr::{AddressMap, LINES_PER_PAGE, PAGE_SIZE};

    /// 4 nodes, 4 pages each, 3+1 parity. Node 0's pages: stripe 0 is
    /// parity (pos 0), stripes 1..4 are data.
    fn setup() -> (ReviveHook, VecPort) {
        let map = AddressMap::new(4, 4 * PAGE_SIZE as u64);
        let parity = ParityMap::new(map, 3);
        // Log on node 0: use its last data page (stripe 3 is data for node 0
        // since 3 % 4 != 0).
        let log_page = map.global_page(NodeId(0), 3);
        assert!(!parity.is_parity_page(log_page));
        let slots: Vec<LineAddr> = log_page.lines().collect();
        let log = MemLog::new(NodeId(0), slots);
        let lbits = LBits::full(map.lines_per_node());
        let hook = ReviveHook::new(Redundancy::Xor(parity), log, lbits);
        // A port covering all of node 0's memory.
        let port = VecPort::new(LineAddr(0), 4 * LINES_PER_PAGE);
        (hook, port)
    }

    /// A data line on node 0 (stripe 1).
    fn data_line() -> LineAddr {
        LineAddr(LINES_PER_PAGE as u64 + 5)
    }

    #[test]
    fn write_intent_logs_once() {
        let (mut hook, mut mem) = setup();
        mem.write(data_line(), LineData::fill(0xAA));
        mem.reset_counts();
        let acks = hook.write_intent(data_line(), None, &mut mem);
        assert_eq!(acks, 1, "one log-parity update to acknowledge");
        assert_eq!(hook.costs.rdx_unlogged, 1);
        // Second intent in the same interval: no-op.
        let acks = hook.write_intent(data_line(), None, &mut mem);
        assert_eq!(acks, 0);
        assert_eq!(hook.costs.intents_already_logged, 1);
        // The log holds the checkpoint contents.
        let entries = hook.log.rollback_entries(0, |l| mem.peek(l));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].line, data_line());
        assert_eq!(entries[0].data, LineData::fill(0xAA));
    }

    #[test]
    fn memory_write_logged_line_costs_one_parity_update() {
        let (mut hook, mut mem) = setup();
        hook.write_intent(data_line(), None, &mut mem);
        hook.drain_outbox();
        mem.reset_counts();
        let acks = hook.memory_write(data_line(), LineData::fill(1), &mut mem);
        assert_eq!(acks, 1);
        assert_eq!(hook.costs.wb_logged, 1);
        // Functional: exactly one read (old data) at the home; the paper's
        // other two accesses happen at the parity home.
        assert_eq!(mem.reads, 1);
        assert_eq!(mem.writes, 0); // the directory writes the data itself
        let out = hook.drain_outbox();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].update.ack_to_line, Some(data_line()));
        assert_eq!(out[0].update.deltas.len(), 1);
    }

    #[test]
    fn unlogged_writeback_logs_and_updates_both_parities() {
        let (mut hook, mut mem) = setup();
        mem.write(data_line(), LineData::fill(0x5A));
        mem.reset_counts();
        let acks = hook.memory_write(data_line(), LineData::fill(0xA5), &mut mem);
        assert_eq!(hook.costs.wb_unlogged, 1);
        let out = hook.drain_outbox();
        // Log-parity update + data-parity update (log lines share a page →
        // one batched message).
        assert_eq!(out.len() as u32, acks);
        assert_eq!(acks, 2);
        // The data-parity delta is old ^ new.
        let data_delta = out
            .iter()
            .flat_map(|m| m.update.deltas.iter())
            .find(|(pl, _)| {
                let pm = hook.redundancy().as_xor().unwrap();
                pl.index_in_page() == data_line().index_in_page()
                    && pl.page() == pm.parity_page_of(data_line().page())
            })
            .expect("data parity delta present");
        assert_eq!(data_delta.1, LineData::fill(0x5A ^ 0xA5));
    }

    #[test]
    fn table1_paper_costs() {
        assert_eq!(
            COST_WB_LOGGED,
            EventCost {
                mem_accesses: 3,
                lines: 1,
                messages: 2
            }
        );
        assert_eq!(
            COST_RDX_UNLOGGED,
            EventCost {
                mem_accesses: 4,
                lines: 2,
                messages: 2
            }
        );
        assert_eq!(
            COST_WB_UNLOGGED,
            EventCost {
                mem_accesses: 8,
                lines: 3,
                messages: 4
            }
        );
        let stats = CostStats {
            wb_logged: 10,
            rdx_unlogged: 5,
            wb_unlogged: 2,
            intents_already_logged: 7,
        };
        assert_eq!(stats.paper_mem_accesses(), 10 * 3 + 5 * 4 + 2 * 8);
        assert_eq!(stats.paper_messages(), 10 * 2 + 5 * 2 + 2 * 4);
    }

    #[test]
    fn disabled_hook_is_free() {
        let (mut hook, mut mem) = setup();
        hook.set_enabled(false);
        assert_eq!(hook.write_intent(data_line(), None, &mut mem), 0);
        assert_eq!(
            hook.memory_write(data_line(), LineData::fill(1), &mut mem),
            0
        );
        assert!(hook.drain_outbox().is_empty());
        assert_eq!(mem.accesses(), 0);
    }

    #[test]
    fn begin_interval_clears_lbits_and_reclaims() {
        let (mut hook, mut mem) = setup();
        hook.write_intent(data_line(), None, &mut mem);
        assert_eq!(hook.lbits.count_set(), 1);
        hook.begin_interval(2, 1);
        assert_eq!(hook.interval(), 2);
        assert_eq!(hook.lbits.count_set(), 0);
        assert_eq!(hook.log.stats().reclaimed, 1);
        // The same line gets logged again in the new interval.
        let acks = hook.write_intent(data_line(), None, &mut mem);
        assert_eq!(acks, 1);
    }

    #[test]
    fn mirroring_ships_new_values_without_reads() {
        let map = AddressMap::new(4, 4 * PAGE_SIZE as u64);
        let parity = ParityMap::new(map, 1); // mirroring
                                             // On node 0 with chunk size 2: stripes 1, 3 are data (pos 0 → even
                                             // stripes are mirror targets homed here).
        let log_page = map.global_page(NodeId(0), 3);
        assert!(!parity.is_parity_page(log_page));
        let log = MemLog::new(NodeId(0), log_page.lines().collect());
        let mut hook = ReviveHook::new(
            Redundancy::Xor(parity),
            log,
            LBits::full(map.lines_per_node()),
        );
        let mut mem = VecPort::new(LineAddr(0), 4 * LINES_PER_PAGE);
        let line = LineAddr(LINES_PER_PAGE as u64 + 5); // stripe 1: data
        hook.write_intent(line, None, &mut mem);
        hook.drain_outbox();
        mem.reset_counts();
        hook.memory_write(line, LineData::fill(3), &mut mem);
        // Already logged + mirroring: no reads at all at the home.
        assert_eq!(mem.reads, 0);
        let out = hook.drain_outbox();
        assert_eq!(out.len(), 1);
        assert!(out[0].mirror);
        assert_eq!(out[0].update.deltas[0].1, LineData::fill(3));
    }

    #[test]
    fn double_parity_ships_scaled_deltas_to_p_and_q() {
        let map = AddressMap::new(4, 4 * PAGE_SIZE as u64);
        let dp = DoubleParityMap::new(map, 2); // one chunk of 4
        let rdx = Redundancy::Double(dp);
        // Node 1 (chunk position 1) is a data member at stripes 2 and 3;
        // log at stripe 3, write at stripe 2 where its GF coefficient
        // index is 1 (position 0 is the other data member).
        let log_page = map.global_page(NodeId(1), 3);
        assert!(!rdx.is_redundancy_page(log_page));
        let log = MemLog::new(NodeId(1), log_page.lines().collect());
        let mut hook = ReviveHook::new(rdx, log, LBits::full(map.lines_per_node()));
        let mut mem = VecPort::new(
            map.global_page(NodeId(1), 0).first_line(),
            4 * LINES_PER_PAGE,
        );
        let line = LineAddr(map.global_page(NodeId(1), 2).first_line().0 + 5);
        mem.write(line, LineData::fill(0x0F));
        hook.write_intent(line, None, &mut mem);
        hook.drain_outbox();
        let acks = hook.memory_write(line, LineData::fill(0xF0), &mut mem);
        // One delta each to the P home and the Q home.
        assert_eq!(acks, 2);
        let out = hook.drain_outbox();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|m| !m.mirror));
        assert_ne!(out[0].to, out[1].to, "P and Q live on different nodes");
        let delta = LineData::fill(0x0F ^ 0xF0);
        let payloads: Vec<LineData> = out.iter().map(|m| m.update.deltas[0].1).collect();
        assert!(payloads.contains(&delta), "P gets the raw delta");
        assert!(
            payloads.contains(&gf_scale(delta, gf_pow(1))),
            "Q gets the delta scaled by the member's coefficient"
        );
    }

    #[test]
    fn replication_ships_values_to_every_replica() {
        let map = AddressMap::new(4, 8 * PAGE_SIZE as u64);
        let rdx = Redundancy::Replication(ReplicationMap::new(map, 3)); // k = 3
                                                                        // Node 0 is primary at stripes 1 and 5; log at 5, write at 1.
        let log_page = map.global_page(NodeId(0), 5);
        assert!(!rdx.is_redundancy_page(log_page));
        let log = MemLog::new(NodeId(0), log_page.lines().collect());
        let mut hook = ReviveHook::new(rdx, log, LBits::full(map.lines_per_node()));
        let mut mem = VecPort::new(LineAddr(0), 8 * LINES_PER_PAGE);
        let line = LineAddr(map.global_page(NodeId(0), 1).first_line().0 + 7);
        hook.write_intent(line, None, &mut mem);
        hook.drain_outbox();
        mem.reset_counts();
        let acks = hook.memory_write(line, LineData::fill(0x42), &mut mem);
        // Already logged + value updates: no reads, one message per replica.
        assert_eq!(mem.reads, 0);
        assert_eq!(acks, 3);
        let out = hook.drain_outbox();
        assert_eq!(out.len(), 3);
        let mut homes: Vec<u16> = out.iter().map(|m| m.to.0).collect();
        homes.sort_unstable();
        assert_eq!(homes, vec![1, 2, 3]);
        for m in &out {
            assert!(m.mirror);
            assert_eq!(m.update.deltas[0].1, LineData::fill(0x42));
        }
    }

    #[test]
    fn checkpoint_marker_has_no_ack_target() {
        let (mut hook, mut mem) = setup();
        hook.mark_checkpoint(1, &mut mem);
        let out = hook.drain_outbox();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].update.ack_to_line, None);
    }
}
