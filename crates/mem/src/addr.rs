//! Physical addresses, cache lines, and pages.
//!
//! The machine uses 64-byte cache lines and 4 KB pages (Table 3). Addresses
//! are *global physical addresses*: the upper bits select the home node, the
//! rest index into that node's local memory. The newtypes here keep byte
//! addresses, line numbers, and page numbers from being mixed up.

use std::fmt;

use revive_sim::fastdiv::FastDiv;
use revive_sim::types::NodeId;

/// Bytes per cache line (64 B, Table 3 of the paper).
pub const LINE_SIZE: usize = 64;
/// Bytes per page (4 KB).
pub const PAGE_SIZE: usize = 4096;
/// Cache lines per page.
pub const LINES_PER_PAGE: usize = PAGE_SIZE / LINE_SIZE;

/// A global physical byte address.
///
/// # Example
///
/// ```
/// use revive_mem::addr::{Addr, LINE_SIZE};
/// let a = Addr(130);
/// assert_eq!(a.line().index(), 2);
/// assert_eq!(a.line().base(), Addr((2 * LINE_SIZE) as u64));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address.
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_SIZE as u64)
    }

    /// The page containing this address.
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 / PAGE_SIZE as u64)
    }

    /// Offset within the containing line.
    pub fn line_offset(self) -> usize {
        (self.0 % LINE_SIZE as u64) as usize
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A global cache-line number (byte address divided by [`LINE_SIZE`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The line number as a plain index.
    pub fn index(self) -> u64 {
        self.0
    }

    /// First byte address of the line.
    pub fn base(self) -> Addr {
        Addr(self.0 * LINE_SIZE as u64)
    }

    /// The page containing this line.
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 / LINES_PER_PAGE as u64)
    }

    /// Position of this line within its page (`0..LINES_PER_PAGE`).
    pub fn index_in_page(self) -> usize {
        (self.0 % LINES_PER_PAGE as u64) as usize
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// A global page number (byte address divided by [`PAGE_SIZE`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageAddr(pub u64);

impl PageAddr {
    /// The page number as a plain index.
    pub fn index(self) -> u64 {
        self.0
    }

    /// First byte address of the page.
    pub fn base(self) -> Addr {
        Addr(self.0 * PAGE_SIZE as u64)
    }

    /// First line of the page.
    pub fn first_line(self) -> LineAddr {
        LineAddr(self.0 * LINES_PER_PAGE as u64)
    }

    /// Iterates over all lines of the page.
    pub fn lines(self) -> impl Iterator<Item = LineAddr> {
        let first = self.first_line().0;
        (first..first + LINES_PER_PAGE as u64).map(LineAddr)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:#x}", self.0)
    }
}

/// Maps global addresses to their home node and node-local offsets.
///
/// The global physical address space is the concatenation of every node's
/// local memory: node `k` homes bytes `[k·M, (k+1)·M)` where `M` is
/// [`AddressMap::bytes_per_node`]. This matches a CC-NUMA machine where the
/// OS allocates pages to nodes (the first-touch policy of the paper is
/// implemented at the page-table layer in `revive-machine`, which hands out
/// global pages from the desired node's range).
///
/// # Example
///
/// ```
/// use revive_mem::addr::{AddressMap, PageAddr};
/// use revive_sim::types::NodeId;
///
/// let map = AddressMap::new(4, 1 << 20); // 4 nodes, 1 MiB each
/// let page = PageAddr(256); // first page of node 1's megabyte
/// assert_eq!(map.home_of_page(page), NodeId(1));
/// assert_eq!(map.local_page_index(page), 0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct AddressMap {
    nodes: usize,
    bytes_per_node: u64,
    /// `/ %` by `bytes_per_node`, strength-reduced (hot in every send and
    /// translation).
    node_div: FastDiv,
}

impl AddressMap {
    /// Creates a map for `nodes` nodes of `bytes_per_node` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_node` is not a whole number of pages, or if
    /// either argument is zero.
    pub fn new(nodes: usize, bytes_per_node: u64) -> AddressMap {
        assert!(nodes > 0, "need at least one node");
        assert!(
            bytes_per_node > 0 && bytes_per_node.is_multiple_of(PAGE_SIZE as u64),
            "node memory must be a nonzero whole number of pages"
        );
        AddressMap {
            nodes,
            bytes_per_node,
            node_div: FastDiv::new(bytes_per_node),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Local memory size per node, in bytes.
    pub fn bytes_per_node(&self) -> u64 {
        self.bytes_per_node
    }

    /// Pages per node.
    pub fn pages_per_node(&self) -> u64 {
        self.bytes_per_node / PAGE_SIZE as u64
    }

    /// Lines per node.
    pub fn lines_per_node(&self) -> u64 {
        self.bytes_per_node / LINE_SIZE as u64
    }

    /// Total bytes across the machine.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_node * self.nodes as u64
    }

    /// The home node of a byte address.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the machine's memory.
    #[inline]
    pub fn home_of(&self, a: Addr) -> NodeId {
        let node = self.node_div.div(a.0);
        assert!(
            (node as usize) < self.nodes,
            "address {a} outside machine memory"
        );
        NodeId::from(node as usize)
    }

    /// The home node of a line.
    pub fn home_of_line(&self, l: LineAddr) -> NodeId {
        self.home_of(l.base())
    }

    /// The home node of a page.
    pub fn home_of_page(&self, p: PageAddr) -> NodeId {
        self.home_of(p.base())
    }

    /// Byte offset of an address within its home node's local memory.
    #[inline]
    pub fn local_offset(&self, a: Addr) -> u64 {
        self.node_div.rem(a.0)
    }

    /// Line index of a line within its home node's local memory.
    pub fn local_line_index(&self, l: LineAddr) -> u64 {
        self.local_offset(l.base()) / LINE_SIZE as u64
    }

    /// Page index of a page within its home node's local memory.
    pub fn local_page_index(&self, p: PageAddr) -> u64 {
        self.local_offset(p.base()) / PAGE_SIZE as u64
    }

    /// The global page at `(node, local_page_index)`.
    ///
    /// # Panics
    ///
    /// Panics if `local` is outside the node's memory.
    pub fn global_page(&self, node: NodeId, local: u64) -> PageAddr {
        assert!(
            local < self.pages_per_node(),
            "local page index {local} out of range"
        );
        PageAddr(node.index() as u64 * self.pages_per_node() + local)
    }

    /// The global line at `(node, local_line_index)`.
    ///
    /// # Panics
    ///
    /// Panics if `local` is outside the node's memory.
    pub fn global_line(&self, node: NodeId, local: u64) -> LineAddr {
        assert!(
            local < self.lines_per_node(),
            "local line index {local} out of range"
        );
        LineAddr(node.index() as u64 * self.lines_per_node() + local)
    }

    /// Iterates over all global pages homed on `node`.
    pub fn pages_of(&self, node: NodeId) -> impl Iterator<Item = PageAddr> {
        let first = node.index() as u64 * self.pages_per_node();
        (first..first + self.pages_per_node()).map(PageAddr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_decomposition() {
        let a = Addr(4096 + 130);
        assert_eq!(a.line(), LineAddr((4096 + 128) / 64));
        assert_eq!(a.page(), PageAddr(1));
        assert_eq!(a.line_offset(), 2);
    }

    #[test]
    fn line_page_relationships() {
        let p = PageAddr(3);
        let lines: Vec<LineAddr> = p.lines().collect();
        assert_eq!(lines.len(), LINES_PER_PAGE);
        assert_eq!(lines[0], p.first_line());
        for (i, l) in lines.iter().enumerate() {
            assert_eq!(l.page(), p);
            assert_eq!(l.index_in_page(), i);
        }
    }

    #[test]
    fn homes_partition_the_space() {
        let map = AddressMap::new(4, 2 * PAGE_SIZE as u64);
        assert_eq!(map.total_bytes(), 8 * PAGE_SIZE as u64);
        let homes: Vec<NodeId> = (0..8).map(|p| map.home_of_page(PageAddr(p))).collect();
        assert_eq!(homes, [0, 0, 1, 1, 2, 2, 3, 3].map(NodeId).to_vec());
    }

    #[test]
    fn global_local_round_trip() {
        let map = AddressMap::new(3, 4 * PAGE_SIZE as u64);
        for node in NodeId::all(3) {
            for local in 0..map.pages_per_node() {
                let g = map.global_page(node, local);
                assert_eq!(map.home_of_page(g), node);
                assert_eq!(map.local_page_index(g), local);
            }
        }
        for node in NodeId::all(3) {
            for local in (0..map.lines_per_node()).step_by(17) {
                let g = map.global_line(node, local);
                assert_eq!(map.home_of_line(g), node);
                assert_eq!(map.local_line_index(g), local);
            }
        }
    }

    #[test]
    fn pages_of_matches_home() {
        let map = AddressMap::new(2, 3 * PAGE_SIZE as u64);
        let pages: Vec<PageAddr> = map.pages_of(NodeId(1)).collect();
        assert_eq!(pages.len(), 3);
        assert!(pages.iter().all(|&p| map.home_of_page(p) == NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "outside machine memory")]
    fn out_of_range_address_panics() {
        let map = AddressMap::new(2, PAGE_SIZE as u64);
        map.home_of(Addr(2 * PAGE_SIZE as u64));
    }

    #[test]
    #[should_panic(expected = "whole number of pages")]
    fn ragged_node_memory_rejected() {
        let _ = AddressMap::new(2, 100);
    }
}
