//! Cache-line data payloads.
//!
//! The simulator is *functional*: lines carry real 64-byte contents, so that
//! parity reconstruction and log-based rollback can be verified value-for-
//! value, not just counted.

use std::fmt;
use std::ops::{BitXor, BitXorAssign};

use crate::addr::LINE_SIZE;

/// The contents of one 64-byte cache line.
///
/// Supports XOR, which is the core of ReVive's distributed parity: a parity
/// update carries `old ^ new`, and applying it to the parity line keeps the
/// group invariant `data₀ ^ data₁ ^ … ^ parity == 0`.
///
/// # Example
///
/// ```
/// use revive_mem::line::LineData;
/// let old = LineData::fill(0xAA);
/// let new = LineData::fill(0x55);
/// let delta = old ^ new;
/// assert_eq!(delta, LineData::fill(0xFF));
/// assert_eq!(old ^ delta, new); // applying the delta recovers the new value
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineData(pub [u8; LINE_SIZE]);

impl LineData {
    /// An all-zero line (the initial contents of memory).
    pub const ZERO: LineData = LineData([0; LINE_SIZE]);

    /// A line with every byte equal to `b`.
    pub fn fill(b: u8) -> LineData {
        LineData([b; LINE_SIZE])
    }

    /// A deterministic pseudo-random line derived from a seed; used by
    /// workloads to write recognizable, reproducible values.
    pub fn from_seed(seed: u64) -> LineData {
        let mut bytes = [0u8; LINE_SIZE];
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        for chunk in bytes.chunks_mut(8) {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            chunk.copy_from_slice(&(z ^ (z >> 31)).to_le_bytes());
        }
        LineData(bytes)
    }

    /// Whether every byte is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// Reads the u64 at byte offset `off` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if `off + 8` exceeds the line size.
    pub fn u64_at(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.0[off..off + 8].try_into().expect("8 bytes"))
    }

    /// Writes the u64 at byte offset `off` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if `off + 8` exceeds the line size.
    pub fn set_u64_at(&mut self, off: usize, v: u64) {
        self.0[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Borrows the raw bytes.
    pub fn as_bytes(&self) -> &[u8; LINE_SIZE] {
        &self.0
    }
}

impl Default for LineData {
    fn default() -> LineData {
        LineData::ZERO
    }
}

impl BitXor for LineData {
    type Output = LineData;
    fn bitxor(mut self, rhs: LineData) -> LineData {
        self ^= rhs;
        self
    }
}

impl BitXorAssign for LineData {
    fn bitxor_assign(&mut self, rhs: LineData) {
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a ^= b;
        }
    }
}

impl fmt::Debug for LineData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Lines are long; show the first quadword and a checksum-ish tail.
        write!(
            f,
            "LineData({:#018x}..{:02x})",
            self.u64_at(0),
            self.0.iter().fold(0u8, |a, &b| a ^ b)
        )
    }
}

impl From<[u8; LINE_SIZE]> for LineData {
    fn from(bytes: [u8; LINE_SIZE]) -> LineData {
        LineData(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_properties() {
        let a = LineData::from_seed(1);
        let b = LineData::from_seed(2);
        assert_eq!(a ^ b, b ^ a);
        assert_eq!(a ^ LineData::ZERO, a);
        assert_eq!(a ^ a, LineData::ZERO);
        assert_eq!((a ^ b) ^ b, a);
    }

    #[test]
    fn from_seed_is_deterministic_and_varied() {
        assert_eq!(LineData::from_seed(42), LineData::from_seed(42));
        assert_ne!(LineData::from_seed(42), LineData::from_seed(43));
        assert!(!LineData::from_seed(0).is_zero());
    }

    #[test]
    fn u64_accessors() {
        let mut l = LineData::ZERO;
        l.set_u64_at(8, 0xDEAD_BEEF);
        assert_eq!(l.u64_at(8), 0xDEAD_BEEF);
        assert_eq!(l.u64_at(0), 0);
        assert!(!l.is_zero());
    }

    #[test]
    fn zero_and_fill() {
        assert!(LineData::ZERO.is_zero());
        assert!(LineData::default().is_zero());
        assert_eq!(LineData::fill(0xFF).0[63], 0xFF);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", LineData::ZERO).is_empty());
    }
}
