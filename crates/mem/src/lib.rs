//! Memory subsystem models for the ReVive reproduction.
//!
//! * [`addr`] — byte/line/page addresses and the global↔node-local
//!   [`addr::AddressMap`].
//! * [`line`](mod@line) — functional 64-byte line contents with XOR (the parity
//!   primitive).
//! * [`cache`] — set-associative write-back caches with MESI states and
//!   true-LRU replacement (the paper's L1/L2).
//! * [`dram`] — banked DRAM timing with open-row modeling (Table 3).
//! * [`main_memory`] — functional, destructible per-node memory contents.
//!
//! # Example
//!
//! ```
//! use revive_mem::addr::{AddressMap, LineAddr};
//! use revive_mem::main_memory::NodeMemory;
//! use revive_mem::line::LineData;
//! use revive_sim::types::NodeId;
//!
//! let map = AddressMap::new(2, 64 * 1024);
//! let line = LineAddr(10);
//! assert_eq!(map.home_of_line(line), NodeId(0));
//!
//! let mut memory = NodeMemory::new(64 * 1024);
//! memory.write_line(map.local_line_index(line), LineData::fill(7));
//! ```

pub mod addr;
pub mod cache;
pub mod dram;
pub mod line;
pub mod main_memory;

pub use addr::{Addr, AddressMap, LineAddr, PageAddr, LINES_PER_PAGE, LINE_SIZE, PAGE_SIZE};
pub use cache::{Cache, CacheConfig, LineState, Victim};
pub use dram::{Dram, DramConfig, DramOp};
pub use line::LineData;
pub use main_memory::NodeMemory;
