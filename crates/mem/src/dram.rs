//! Banked DRAM timing.
//!
//! Table 3 of the paper: "Memory: 100 MHz 16-bank DDR, 128 bits wide, 60 ns
//! row miss". The model here is a per-bank busy-until resource with an open
//! row: an access to the bank's open row costs the transfer time only; a row
//! miss adds the 60 ns activation. Accesses to different banks overlap. This
//! is also where the paper's observation that "the log is accessed in a
//! sequential manner … can be performed very efficiently in modern DRAMs"
//! shows up: sequential log/parity traffic is nearly all row hits.

use revive_sim::resource::ResourceBank;
use revive_sim::time::Ns;

/// DRAM timing parameters.
#[derive(Clone, Copy, Debug)]
pub struct DramConfig {
    /// Number of independent banks (16 in the paper).
    pub banks: usize,
    /// Row-miss (activate + transfer) latency: 60 ns in the paper.
    pub row_miss: Ns,
    /// Row-hit (transfer only) latency. A 64-byte line over a 128-bit-wide
    /// 100 MHz DDR interface moves in 4 bus cycles ⇒ 20 ns.
    pub row_hit: Ns,
    /// Cache lines per DRAM row (a 2 KB row holds 32 lines).
    pub lines_per_row: u64,
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        DramConfig {
            banks: 16,
            row_miss: Ns(60),
            row_hit: Ns(20),
            lines_per_row: 32,
        }
    }
}

/// Kinds of DRAM access, for accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DramOp {
    /// A line read.
    Read,
    /// A line write.
    Write,
}

/// Access counters for one memory controller.
#[derive(Clone, Copy, Debug, Default)]
pub struct DramStats {
    /// Total line reads.
    pub reads: u64,
    /// Total line writes.
    pub writes: u64,
    /// Accesses that hit the open row.
    pub row_hits: u64,
    /// Accesses that had to open a new row.
    pub row_misses: u64,
}

impl DramStats {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of accesses that hit the open row.
    pub fn row_hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.total() as f64
        }
    }
}

/// The timing model of one node's memory controller and DRAM.
///
/// # Example
///
/// ```
/// use revive_mem::dram::{Dram, DramConfig, DramOp};
/// use revive_sim::time::Ns;
///
/// let mut d = Dram::new(DramConfig::default());
/// // First access to a row: 60ns row miss.
/// let t1 = d.access(Ns(0), 0, DramOp::Read);
/// assert_eq!(t1, Ns(60));
/// // Next line in the same row: row hit, and it queues behind the first.
/// let t2 = d.access(Ns(0), 1, DramOp::Read);
/// assert_eq!(t2, Ns(80));
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    config: DramConfig,
    banks: ResourceBank,
    open_rows: Vec<Option<u64>>,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM model with all rows closed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero banks or zero lines per row.
    pub fn new(config: DramConfig) -> Dram {
        assert!(config.lines_per_row > 0, "rows must hold at least one line");
        Dram {
            banks: ResourceBank::new(config.banks),
            open_rows: vec![None; config.banks],
            config,
            stats: DramStats::default(),
        }
    }

    /// The configured timing parameters.
    pub fn config(&self) -> DramConfig {
        self.config
    }

    /// Access counters so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Which bank a node-local line lives in. Consecutive *rows* interleave
    /// across banks (row-interleaving), so a sequential stream keeps each
    /// bank's row open while spreading load.
    pub fn bank_of(&self, local_line: u64) -> usize {
        ((local_line / self.config.lines_per_row) % self.config.banks as u64) as usize
    }

    fn row_of(&self, local_line: u64) -> u64 {
        local_line / (self.config.lines_per_row * self.config.banks as u64)
    }

    /// Performs a line access beginning no earlier than `now`; returns the
    /// completion time, accounting for bank queueing and row hits/misses.
    pub fn access(&mut self, now: Ns, local_line: u64, op: DramOp) -> Ns {
        let bank = self.bank_of(local_line);
        let row = self.row_of(local_line);
        let hit = self.open_rows[bank] == Some(row);
        let service = if hit {
            self.stats.row_hits += 1;
            self.config.row_hit
        } else {
            self.stats.row_misses += 1;
            self.open_rows[bank] = Some(row);
            self.config.row_miss
        };
        match op {
            DramOp::Read => self.stats.reads += 1,
            DramOp::Write => self.stats.writes += 1,
        }
        self.banks.acquire(bank, now, service)
    }

    /// Total busy time across banks (for utilization reports).
    pub fn busy_total(&self) -> Ns {
        self.banks.busy_total()
    }

    /// Total queueing delay across banks.
    pub fn wait_total(&self) -> Ns {
        self.banks.wait_total()
    }

    /// Per-bank busy time, in bank order (for bank-utilization time series:
    /// an epoch's utilization is the delta of two snapshots over the epoch).
    pub fn bank_busy(&self) -> Vec<Ns> {
        (0..self.banks.len())
            .map(|i| self.banks.member(i).busy_total())
            .collect()
    }

    /// Resets timing state (post-error reinitialization). Counters are kept;
    /// open rows and reservations are dropped.
    pub fn reset_timing(&mut self) {
        self.banks.reset();
        self.open_rows.iter_mut().for_each(|r| *r = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hits_are_cheaper() {
        let mut d = Dram::new(DramConfig::default());
        let t1 = d.access(Ns(0), 0, DramOp::Read);
        assert_eq!(t1, Ns(60)); // row miss
        let t2 = d.access(t1, 1, DramOp::Read);
        assert_eq!(t2 - t1, Ns(20)); // row hit
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn different_banks_overlap() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        // Lines in different banks: rows interleave across banks.
        let other_bank_line = cfg.lines_per_row; // row 1 => bank 1
        assert_ne!(d.bank_of(0), d.bank_of(other_bank_line));
        let t1 = d.access(Ns(0), 0, DramOp::Read);
        let t2 = d.access(Ns(0), other_bank_line, DramOp::Read);
        assert_eq!(t1, t2); // parallel banks
    }

    #[test]
    fn same_bank_queues() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        let same_bank_far_line = cfg.lines_per_row * cfg.banks as u64; // row 0 of bank 0 again, different row index
        assert_eq!(d.bank_of(0), d.bank_of(same_bank_far_line));
        let t1 = d.access(Ns(0), 0, DramOp::Read);
        let t2 = d.access(Ns(0), same_bank_far_line, DramOp::Read);
        assert_eq!(t1, Ns(60));
        assert_eq!(t2, Ns(120)); // queued, and a row miss (different row)
    }

    #[test]
    fn conflicting_rows_thrash() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        let a = 0u64;
        let b = cfg.lines_per_row * cfg.banks as u64;
        let mut t = Ns(0);
        for _ in 0..3 {
            t = d.access(t, a, DramOp::Read);
            t = d.access(t, b, DramOp::Read);
        }
        assert_eq!(d.stats().row_misses, 6);
        assert_eq!(d.stats().row_hits, 0);
    }

    #[test]
    fn counters_track_ops() {
        let mut d = Dram::new(DramConfig::default());
        d.access(Ns(0), 0, DramOp::Read);
        d.access(Ns(0), 1, DramOp::Write);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().total(), 2);
        assert!(d.stats().row_hit_rate() > 0.0);
    }

    #[test]
    fn reset_timing_keeps_counters() {
        let mut d = Dram::new(DramConfig::default());
        d.access(Ns(0), 0, DramOp::Read);
        d.reset_timing();
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.busy_total(), Ns::ZERO);
        // Row was closed by the reset: next access is a miss again.
        d.access(Ns(0), 0, DramOp::Read);
        assert_eq!(d.stats().row_misses, 2);
    }
}
