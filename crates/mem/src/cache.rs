//! Set-associative write-back caches with MESI line states.
//!
//! One [`Cache`] models a cache level: tags, MESI states, true-LRU
//! replacement, and (for the L2, which is the coherence point) the actual
//! line contents. The L1 uses the same structure as a timing filter; the
//! functional data lives at the L2 (see `revive-machine` for the rationale —
//! L2 is inclusive, so any externally visible access reaches it).

use std::fmt;

use revive_sim::fastdiv::FastDiv;

use crate::addr::{LineAddr, LINE_SIZE};
use crate::line::LineData;

/// MESI cache-line states.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Not present / stale.
    #[default]
    Invalid,
    /// Read-only; other caches may also hold the line; memory is up to date.
    Shared,
    /// Exclusive clean: only this cache holds the line; memory is up to date.
    /// A write upgrades to [`LineState::Modified`] silently (no directory
    /// message) — this is what creates the paper's Figure 5(b) case, where a
    /// write-back arrives for a line that was never announced as modified.
    Exclusive,
    /// Exclusive dirty: only this cache holds the line; memory is stale.
    Modified,
}

impl LineState {
    /// Whether the line holds write permission.
    pub fn is_exclusive(self) -> bool {
        matches!(self, LineState::Exclusive | LineState::Modified)
    }

    /// Whether the line's contents differ from memory.
    pub fn is_dirty(self) -> bool {
        self == LineState::Modified
    }

    /// Whether the line is present at all.
    pub fn is_valid(self) -> bool {
        self != LineState::Invalid
    }
}

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes; must be a multiple of `ways × LINE_SIZE`.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// The paper's L1: 16 KB, 4-way.
    pub fn l1_paper() -> CacheConfig {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
        }
    }

    /// The paper's L2: 128 KB, 4-way.
    pub fn l2_paper() -> CacheConfig {
        CacheConfig {
            size_bytes: 128 * 1024,
            ways: 4,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * LINE_SIZE)
    }

    /// Total line capacity.
    pub fn lines(&self) -> usize {
        self.size_bytes / LINE_SIZE
    }
}

// Lines are stored structure-of-arrays: tags, states and LRU stamps live in
// their own dense arrays so a tag probe touches one or two host cache lines,
// while the 64-byte line contents sit in a separate arena that is only
// touched when data actually moves. With the old array-of-structs layout a
// 4-way probe dragged ~350 bytes of payload through the host cache per
// lookup, which dominated the simulator's wall time.

/// A line evicted to make room for a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Victim {
    /// Which line was evicted.
    pub line: LineAddr,
    /// Its state at eviction. [`LineState::Modified`] victims must be
    /// written back with [`Victim::data`]; [`LineState::Exclusive`] victims
    /// produce a clean replacement notice; [`LineState::Shared`] victims are
    /// dropped silently.
    pub state: LineState,
    /// The line contents (meaningful for `Modified` victims).
    pub data: LineData,
}

/// Hit/miss counters for one cache.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Lookups that found a usable line.
    pub hits: u64,
    /// Lookups that missed (including permission misses counted by callers).
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio over all lookups; zero when no lookups happened.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative write-back cache with true-LRU replacement.
///
/// # Example
///
/// ```
/// use revive_mem::addr::LineAddr;
/// use revive_mem::cache::{Cache, CacheConfig, LineState};
/// use revive_mem::line::LineData;
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 4096, ways: 2 });
/// assert_eq!(c.state_of(LineAddr(7)), LineState::Invalid);
/// let victim = c.fill(LineAddr(7), LineState::Exclusive, LineData::fill(9));
/// assert!(victim.is_none());
/// assert_eq!(c.state_of(LineAddr(7)), LineState::Exclusive);
/// ```
#[derive(Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `% sets`, strength-reduced (set counts are fixed per cache).
    set_rem: FastDiv,
    ways: usize,
    /// Tag of each way, indexed `set * ways + way`. Only meaningful where
    /// the matching state is valid.
    tags: Vec<u64>,
    /// MESI state of each way (same indexing as `tags`).
    states: Vec<LineState>,
    /// LRU stamp of each way (same indexing as `tags`).
    last_use: Vec<u64>,
    /// Line contents, kept out of the probe path (same indexing as `tags`).
    data: Vec<LineData>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not a multiple of
    /// `ways × LINE_SIZE`, or zero sets/ways).
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.ways > 0, "cache needs at least one way");
        assert!(
            config.size_bytes.is_multiple_of(config.ways * LINE_SIZE) && config.sets() > 0,
            "cache capacity {} is not a whole number of {}-way sets",
            config.size_bytes,
            config.ways
        );
        let lines = config.sets() * config.ways;
        Cache {
            config,
            set_rem: FastDiv::new(config.sets() as u64),
            ways: config.ways,
            tags: vec![0; lines],
            states: vec![LineState::Invalid; lines],
            last_use: vec![0; lines],
            data: vec![LineData::ZERO; lines],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Hit/miss statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    #[inline]
    fn set_base(&self, line: LineAddr) -> usize {
        self.set_rem.rem(line.0) as usize * self.ways
    }

    /// Index of the line's way slot in the flat arrays, when present.
    #[inline]
    fn find(&self, line: LineAddr) -> Option<usize> {
        let base = self.set_base(line);
        (base..base + self.ways).find(|&i| self.tags[i] == line.0 && self.states[i].is_valid())
    }

    /// The line's current state ([`LineState::Invalid`] if absent). Does not
    /// touch LRU or statistics.
    pub fn state_of(&self, line: LineAddr) -> LineState {
        self.find(line)
            .map(|i| self.states[i])
            .unwrap_or(LineState::Invalid)
    }

    /// Looks the line up as a CPU access would: updates LRU and hit/miss
    /// counters, returns the state (Invalid on miss).
    #[inline]
    pub fn access(&mut self, line: LineAddr) -> LineState {
        self.clock += 1;
        if let Some(i) = self.find(line) {
            self.last_use[i] = self.clock;
            self.stats.hits += 1;
            self.states[i]
        } else {
            self.stats.misses += 1;
            LineState::Invalid
        }
    }

    /// Reads the line's data (no LRU update).
    pub fn data_of(&self, line: LineAddr) -> Option<LineData> {
        self.find(line).map(|i| self.data[i])
    }

    /// Overwrites the line's data in place.
    ///
    /// # Panics
    ///
    /// Panics if the line is not present.
    pub fn write_data(&mut self, line: LineAddr, data: LineData) {
        let i = self.find(line).expect("write_data on absent line");
        self.data[i] = data;
    }

    /// Changes the line's state (e.g. `Exclusive → Modified` on a write hit,
    /// or `Modified → Shared` on a downgrade).
    ///
    /// # Panics
    ///
    /// Panics if the line is not present, or if the new state is Invalid
    /// (use [`Cache::invalidate`]).
    pub fn set_state(&mut self, line: LineAddr, state: LineState) {
        assert!(state.is_valid(), "use invalidate() to remove lines");
        let i = self.find(line).expect("set_state on absent line");
        self.states[i] = state;
    }

    /// Inserts a line, evicting the LRU way of its set if the set is full.
    /// Returns the victim when one was displaced (any valid state; the
    /// caller decides what notification, if any, the eviction produces).
    ///
    /// # Panics
    ///
    /// Panics if the line is already present (fills must be preceded by a
    /// miss) or if `state` is Invalid.
    pub fn fill(&mut self, line: LineAddr, state: LineState, data: LineData) -> Option<Victim> {
        assert!(state.is_valid(), "cannot fill an Invalid line");
        assert!(self.find(line).is_none(), "fill of already-present {line}");
        self.clock += 1;
        let base = self.set_base(line);
        let range = base..base + self.ways;
        // First invalid way, else the first true-LRU way among valid ones
        // (both tie-breaks match the original array-of-structs layout).
        let slot = match range.clone().find(|&i| !self.states[i].is_valid()) {
            Some(i) => i,
            None => range
                .min_by_key(|&i| self.last_use[i])
                .expect("nonempty set"),
        };
        let victim = self.states[slot].is_valid().then(|| Victim {
            line: LineAddr(self.tags[slot]),
            state: self.states[slot],
            data: self.data[slot],
        });
        self.tags[slot] = line.0;
        self.states[slot] = state;
        self.data[slot] = data;
        self.last_use[slot] = self.clock;
        victim
    }

    /// Removes the line (external invalidation or rollback cache wipe).
    /// Returns its prior state and data when it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<(LineState, LineData)> {
        let i = self.find(line)?;
        let prior = (self.states[i], self.data[i]);
        self.states[i] = LineState::Invalid;
        Some(prior)
    }

    /// Downgrades an exclusive line to Shared, returning its data when it
    /// was Modified (the caller must write it back: a "sharing write-back").
    pub fn downgrade(&mut self, line: LineAddr) -> Option<LineData> {
        let i = self.find(line)?;
        let was_dirty = self.states[i].is_dirty();
        if self.states[i].is_valid() {
            self.states[i] = LineState::Shared;
        }
        was_dirty.then_some(self.data[i])
    }

    /// All lines currently in the Modified state (what a checkpoint flush
    /// must write back), in set-major way order.
    pub fn dirty_lines(&self) -> Vec<LineAddr> {
        (0..self.tags.len())
            .filter(|&i| self.states[i].is_dirty())
            .map(|i| LineAddr(self.tags[i]))
            .collect()
    }

    /// All valid lines, with their states, in set-major way order.
    pub fn valid_lines(&self) -> Vec<(LineAddr, LineState)> {
        (0..self.tags.len())
            .filter(|&i| self.states[i].is_valid())
            .map(|i| (LineAddr(self.tags[i]), self.states[i]))
            .collect()
    }

    /// Number of Modified lines.
    pub fn dirty_count(&self) -> usize {
        self.states.iter().filter(|s| s.is_dirty()).count()
    }

    /// Number of valid lines.
    pub fn valid_count(&self) -> usize {
        self.states.iter().filter(|s| s.is_valid()).count()
    }

    /// Invalidates everything (rollback discards all post-checkpoint cached
    /// state; transient-error injection wipes caches).
    pub fn clear(&mut self) {
        self.states.fill(LineState::Invalid);
    }
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cache({}B {}-way, {} valid, {} dirty)",
            self.config.size_bytes,
            self.config.ways,
            self.valid_count(),
            self.dirty_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets × 2 ways.
        Cache::new(CacheConfig {
            size_bytes: 4 * LINE_SIZE,
            ways: 2,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert_eq!(c.access(LineAddr(4)), LineState::Invalid);
        c.fill(LineAddr(4), LineState::Shared, LineData::fill(1));
        assert_eq!(c.access(LineAddr(4)), LineState::Shared);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.data_of(LineAddr(4)), Some(LineData::fill(1)));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        c.fill(LineAddr(0), LineState::Shared, LineData::ZERO);
        c.fill(LineAddr(2), LineState::Shared, LineData::ZERO);
        c.access(LineAddr(0)); // 0 is now more recent than 2
        let v = c.fill(LineAddr(4), LineState::Shared, LineData::ZERO);
        assert_eq!(v.unwrap().line, LineAddr(2));
        assert_eq!(c.state_of(LineAddr(0)), LineState::Shared);
        assert_eq!(c.state_of(LineAddr(2)), LineState::Invalid);
    }

    #[test]
    fn modified_victim_carries_data() {
        let mut c = small();
        c.fill(LineAddr(0), LineState::Modified, LineData::fill(7));
        c.fill(LineAddr(2), LineState::Shared, LineData::ZERO);
        let v = c
            .fill(LineAddr(4), LineState::Shared, LineData::ZERO)
            .unwrap();
        assert_eq!(v.line, LineAddr(0));
        assert_eq!(v.state, LineState::Modified);
        assert_eq!(v.data, LineData::fill(7));
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut c = small();
        c.fill(LineAddr(1), LineState::Modified, LineData::fill(3));
        let wb = c.downgrade(LineAddr(1));
        assert_eq!(wb, Some(LineData::fill(3)));
        assert_eq!(c.state_of(LineAddr(1)), LineState::Shared);
        // Downgrading a Shared line yields no data.
        assert_eq!(c.downgrade(LineAddr(1)), None);
        let (st, _) = c.invalidate(LineAddr(1)).unwrap();
        assert_eq!(st, LineState::Shared);
        assert_eq!(c.state_of(LineAddr(1)), LineState::Invalid);
        assert_eq!(c.invalidate(LineAddr(1)), None);
    }

    #[test]
    fn silent_e_to_m_transition() {
        let mut c = small();
        c.fill(LineAddr(1), LineState::Exclusive, LineData::ZERO);
        c.set_state(LineAddr(1), LineState::Modified);
        c.write_data(LineAddr(1), LineData::fill(9));
        assert_eq!(c.dirty_lines(), vec![LineAddr(1)]);
        assert_eq!(c.dirty_count(), 1);
    }

    #[test]
    fn clear_wipes_everything() {
        let mut c = small();
        c.fill(LineAddr(0), LineState::Modified, LineData::ZERO);
        c.fill(LineAddr(1), LineState::Shared, LineData::ZERO);
        c.clear();
        assert_eq!(c.valid_count(), 0);
        assert_eq!(c.dirty_count(), 0);
    }

    #[test]
    fn paper_geometries() {
        let l1 = Cache::new(CacheConfig::l1_paper());
        let l2 = Cache::new(CacheConfig::l2_paper());
        assert_eq!(l1.config().lines(), 256);
        assert_eq!(l2.config().lines(), 2048);
        assert_eq!(l1.config().sets(), 64);
    }

    #[test]
    #[should_panic(expected = "already-present")]
    fn double_fill_panics() {
        let mut c = small();
        c.fill(LineAddr(0), LineState::Shared, LineData::ZERO);
        c.fill(LineAddr(0), LineState::Shared, LineData::ZERO);
    }

    #[test]
    fn state_queries_do_not_touch_lru() {
        let mut c = small();
        c.fill(LineAddr(0), LineState::Shared, LineData::ZERO);
        c.fill(LineAddr(2), LineState::Shared, LineData::ZERO);
        // Peek at 0 without touching LRU; 0 must still be the LRU victim.
        assert_eq!(c.state_of(LineAddr(0)), LineState::Shared);
        let v = c.fill(LineAddr(4), LineState::Shared, LineData::ZERO);
        assert_eq!(v.unwrap().line, LineAddr(0));
    }
}
