//! Functional main memory.
//!
//! Each node owns a byte-addressable slice of the machine's memory. Unlike a
//! pure timing model, the contents are real: ReVive's parity reconstruction
//! and log replay are verified against actual values. A node's memory can be
//! *destroyed* (node-loss injection), after which reads panic — anything
//! still reading it is a simulator bug; recovery must reconstruct pages from
//! parity before touching them.

use crate::addr::{LINE_SIZE, PAGE_SIZE};
use crate::line::LineData;

/// The functional memory of one node.
///
/// Addresses here are *node-local line indices*; the global↔local mapping
/// lives in [`crate::addr::AddressMap`].
///
/// # Example
///
/// ```
/// use revive_mem::main_memory::NodeMemory;
/// use revive_mem::line::LineData;
///
/// let mut m = NodeMemory::new(8 * 4096);
/// m.write_line(3, LineData::fill(0xCD));
/// assert_eq!(m.read_line(3), LineData::fill(0xCD));
/// ```
#[derive(Clone)]
pub struct NodeMemory {
    bytes: Vec<u8>,
    lost: bool,
}

impl NodeMemory {
    /// Creates a zero-filled memory of `size_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the size is not a nonzero whole number of pages.
    pub fn new(size_bytes: usize) -> NodeMemory {
        assert!(
            size_bytes > 0 && size_bytes.is_multiple_of(PAGE_SIZE),
            "node memory must be a nonzero whole number of pages"
        );
        NodeMemory {
            bytes: vec![0; size_bytes],
            lost: false,
        }
    }

    /// Capacity in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Capacity in lines.
    pub fn lines(&self) -> u64 {
        (self.bytes.len() / LINE_SIZE) as u64
    }

    /// Capacity in pages.
    pub fn pages(&self) -> u64 {
        (self.bytes.len() / PAGE_SIZE) as u64
    }

    /// Whether this memory has been destroyed and not yet reconstructed.
    pub fn is_lost(&self) -> bool {
        self.lost
    }

    fn line_range(&self, local_line: u64) -> std::ops::Range<usize> {
        let start = local_line as usize * LINE_SIZE;
        assert!(
            start + LINE_SIZE <= self.bytes.len(),
            "line {local_line} outside node memory"
        );
        start..start + LINE_SIZE
    }

    /// Reads one line.
    ///
    /// # Panics
    ///
    /// Panics if the line is out of range, or if the memory is lost —
    /// recovery must reconstruct pages before reading them.
    pub fn read_line(&self, local_line: u64) -> LineData {
        assert!(
            !self.lost,
            "read of destroyed memory (line {local_line}); reconstruct first"
        );
        let r = self.line_range(local_line);
        let mut out = [0u8; LINE_SIZE];
        out.copy_from_slice(&self.bytes[r]);
        LineData(out)
    }

    /// Writes one line.
    ///
    /// # Panics
    ///
    /// Panics if the line is out of range or the memory is lost.
    pub fn write_line(&mut self, local_line: u64, data: LineData) {
        assert!(
            !self.lost,
            "write to destroyed memory (line {local_line}); reconstruct first"
        );
        let r = self.line_range(local_line);
        self.bytes[r].copy_from_slice(&data.0);
    }

    /// XORs `delta` into a line in place (the parity-home update
    /// `P' = P ^ U` of Figure 4).
    ///
    /// # Panics
    ///
    /// Panics if the line is out of range or the memory is lost.
    pub fn xor_line(&mut self, local_line: u64, delta: LineData) {
        let cur = self.read_line(local_line);
        self.write_line(local_line, cur ^ delta);
    }

    /// Destroys the contents (node-loss injection): data becomes garbage
    /// and all further access panics until [`NodeMemory::reconstruct_blank`]
    /// resets it.
    pub fn destroy(&mut self) {
        self.bytes.fill(0xDE);
        self.lost = true;
    }

    /// Replaces the destroyed contents with a zeroed memory ready for
    /// reconstruction (recovery Phase 2 writes rebuilt pages into it).
    pub fn reconstruct_blank(&mut self) {
        self.bytes.fill(0);
        self.lost = false;
    }

    /// A full copy of the contents, for shadow-snapshot verification.
    ///
    /// # Panics
    ///
    /// Panics if the memory is lost.
    pub fn snapshot(&self) -> Vec<u8> {
        assert!(!self.lost, "snapshot of destroyed memory");
        self.bytes.clone()
    }

    /// Restores contents from a snapshot taken with [`NodeMemory::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot size does not match.
    pub fn restore(&mut self, snapshot: &[u8]) {
        assert_eq!(snapshot.len(), self.bytes.len(), "snapshot size mismatch");
        self.bytes.copy_from_slice(snapshot);
        self.lost = false;
    }
}

impl std::fmt::Debug for NodeMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "NodeMemory({} KB{})",
            self.bytes.len() / 1024,
            if self.lost { ", LOST" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = NodeMemory::new(PAGE_SIZE);
        assert_eq!(m.read_line(0), LineData::ZERO);
        let d = LineData::from_seed(5);
        m.write_line(7, d);
        assert_eq!(m.read_line(7), d);
        assert_eq!(m.lines(), (PAGE_SIZE / LINE_SIZE) as u64);
        assert_eq!(m.pages(), 1);
    }

    #[test]
    fn xor_line_applies_delta() {
        let mut m = NodeMemory::new(PAGE_SIZE);
        m.write_line(0, LineData::fill(0xF0));
        m.xor_line(0, LineData::fill(0x0F));
        assert_eq!(m.read_line(0), LineData::fill(0xFF));
    }

    #[test]
    fn snapshot_restore() {
        let mut m = NodeMemory::new(PAGE_SIZE);
        m.write_line(3, LineData::fill(1));
        let snap = m.snapshot();
        m.write_line(3, LineData::fill(2));
        m.restore(&snap);
        assert_eq!(m.read_line(3), LineData::fill(1));
    }

    #[test]
    #[should_panic(expected = "destroyed memory")]
    fn read_after_destroy_panics() {
        let mut m = NodeMemory::new(PAGE_SIZE);
        m.destroy();
        assert!(m.is_lost());
        let _ = m.read_line(0);
    }

    #[test]
    fn reconstruct_blank_allows_access_again() {
        let mut m = NodeMemory::new(PAGE_SIZE);
        m.write_line(0, LineData::fill(9));
        m.destroy();
        m.reconstruct_blank();
        assert!(!m.is_lost());
        // Contents were genuinely lost.
        assert_eq!(m.read_line(0), LineData::ZERO);
    }

    #[test]
    #[should_panic(expected = "outside node memory")]
    fn out_of_range_line_panics() {
        let m = NodeMemory::new(PAGE_SIZE);
        let _ = m.read_line(m.lines());
    }
}
