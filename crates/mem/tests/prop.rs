//! Property-based tests for the memory substrates.

use proptest::prelude::*;
use revive_mem::addr::{AddressMap, LineAddr, PageAddr, PAGE_SIZE};
use revive_mem::cache::{Cache, CacheConfig, LineState};
use revive_mem::line::LineData;

proptest! {
    /// XOR over lines is an abelian group with identity ZERO — the algebra
    /// distributed parity relies on.
    #[test]
    fn line_xor_group_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (x, y, z) = (
            LineData::from_seed(a),
            LineData::from_seed(b),
            LineData::from_seed(c),
        );
        prop_assert_eq!(x ^ y, y ^ x);
        prop_assert_eq!((x ^ y) ^ z, x ^ (y ^ z));
        prop_assert_eq!(x ^ LineData::ZERO, x);
        prop_assert_eq!(x ^ x, LineData::ZERO);
    }

    /// Applying a delta `old ^ new` to a parity word that contained `old`'s
    /// contribution swaps it for `new` — one-step parity maintenance.
    #[test]
    fn parity_delta_swaps_contribution(
        others in any::<u64>(),
        old in any::<u64>(),
        new in any::<u64>(),
    ) {
        let rest = LineData::from_seed(others);
        let old = LineData::from_seed(old);
        let new = LineData::from_seed(new);
        let parity = rest ^ old;
        prop_assert_eq!(parity ^ (old ^ new), rest ^ new);
    }

    /// The global↔local address mapping is a bijection over the machine.
    #[test]
    fn address_map_round_trips(
        nodes in 1usize..9,
        pages in 1u64..32,
        pick in any::<u64>(),
    ) {
        let map = AddressMap::new(nodes, pages * PAGE_SIZE as u64);
        let total = map.pages_per_node() * nodes as u64;
        let page = PageAddr(pick % total);
        let node = map.home_of_page(page);
        let local = map.local_page_index(page);
        prop_assert_eq!(map.global_page(node, local), page);
        let line = page.first_line();
        prop_assert_eq!(map.home_of_line(line), node);
        prop_assert_eq!(
            map.global_line(node, map.local_line_index(line)),
            line
        );
    }

    /// A cache never holds more lines than its capacity, never holds
    /// duplicates, and every line it returns as a victim was previously
    /// filled. (Reference-model check over random fill/invalidate traces.)
    #[test]
    fn cache_capacity_and_victims(
        ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..200),
        ways in 1usize..5,
    ) {
        let config = CacheConfig {
            size_bytes: 8 * ways * 64, // 8 sets
            ways,
        };
        let mut cache = Cache::new(config);
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for (line, invalidate) in ops {
            let addr = LineAddr(line);
            if invalidate {
                cache.invalidate(addr);
                resident.remove(&line);
            } else if !resident.contains(&line) {
                let victim = cache.fill(addr, LineState::Shared, LineData::ZERO);
                if let Some(v) = victim {
                    prop_assert!(resident.remove(&v.line.0), "victim {:?} not resident", v.line);
                }
                resident.insert(line);
            } else {
                prop_assert!(cache.access(addr).is_valid());
            }
            prop_assert!(cache.valid_count() <= config.lines());
            prop_assert_eq!(cache.valid_count(), resident.len());
        }
    }

    /// Cached data round-trips through fills, writes, and victims.
    #[test]
    fn cache_data_round_trips(lines in proptest::collection::vec(0u64..32, 1..50)) {
        let mut cache = Cache::new(CacheConfig { size_bytes: 64 * 64, ways: 4 });
        let mut model: std::collections::HashMap<u64, LineData> = Default::default();
        for (i, line) in lines.into_iter().enumerate() {
            let addr = LineAddr(line);
            let data = LineData::from_seed(i as u64);
            if model.contains_key(&line) {
                cache.write_data(addr, data);
            } else if let Some(v) = cache.fill(addr, LineState::Modified, data) {
                let expect = model.remove(&v.line.0).expect("victim was resident");
                prop_assert_eq!(v.data, expect);
            }
            model.insert(line, data);
            prop_assert_eq!(cache.data_of(addr), Some(data));
        }
    }
}
