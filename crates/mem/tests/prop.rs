//! Randomized property tests for the memory substrates.
//!
//! Each test sweeps many [`DetRng`]-generated cases (deterministic, so
//! failures reproduce exactly) in place of an external property-testing
//! framework — the workspace builds with no network access.

use revive_mem::addr::{AddressMap, LineAddr, PageAddr, PAGE_SIZE};
use revive_mem::cache::{Cache, CacheConfig, LineState};
use revive_mem::line::LineData;
use revive_sim::rng::DetRng;

const CASES: usize = 256;

/// XOR over lines is an abelian group with identity ZERO — the algebra
/// distributed parity relies on.
#[test]
fn line_xor_group_laws() {
    let mut rng = DetRng::seed(0x11ea);
    for _ in 0..CASES {
        let (x, y, z) = (
            LineData::from_seed(rng.next_u64()),
            LineData::from_seed(rng.next_u64()),
            LineData::from_seed(rng.next_u64()),
        );
        assert_eq!(x ^ y, y ^ x);
        assert_eq!((x ^ y) ^ z, x ^ (y ^ z));
        assert_eq!(x ^ LineData::ZERO, x);
        assert_eq!(x ^ x, LineData::ZERO);
    }
}

/// Applying a delta `old ^ new` to a parity word that contained `old`'s
/// contribution swaps it for `new` — one-step parity maintenance.
#[test]
fn parity_delta_swaps_contribution() {
    let mut rng = DetRng::seed(0xde17a);
    for _ in 0..CASES {
        let rest = LineData::from_seed(rng.next_u64());
        let old = LineData::from_seed(rng.next_u64());
        let new = LineData::from_seed(rng.next_u64());
        let parity = rest ^ old;
        assert_eq!(parity ^ (old ^ new), rest ^ new);
    }
}

/// The global↔local address mapping is a bijection over the machine.
#[test]
fn address_map_round_trips() {
    let mut rng = DetRng::seed(0xadd2);
    for _ in 0..CASES {
        let nodes = rng.range(1, 9) as usize;
        let pages = rng.range(1, 32);
        let map = AddressMap::new(nodes, pages * PAGE_SIZE as u64);
        let total = map.pages_per_node() * nodes as u64;
        let page = PageAddr(rng.next_u64() % total);
        let node = map.home_of_page(page);
        let local = map.local_page_index(page);
        assert_eq!(map.global_page(node, local), page);
        let line = page.first_line();
        assert_eq!(map.home_of_line(line), node);
        assert_eq!(map.global_line(node, map.local_line_index(line)), line);
    }
}

/// A cache never holds more lines than its capacity, never holds
/// duplicates, and every line it returns as a victim was previously
/// filled. (Reference-model check over random fill/invalidate traces.)
#[test]
fn cache_capacity_and_victims() {
    let mut rng = DetRng::seed(0xcac4e);
    for _ in 0..CASES {
        let ways = rng.range(1, 5) as usize;
        let config = CacheConfig {
            size_bytes: 8 * ways * 64, // 8 sets
            ways,
        };
        let mut cache = Cache::new(config);
        let mut resident: std::collections::HashSet<u64> = Default::default();
        let n_ops = rng.range(1, 200);
        for _ in 0..n_ops {
            let line = rng.range(0, 64);
            let invalidate = rng.chance(0.5);
            let addr = LineAddr(line);
            if invalidate {
                cache.invalidate(addr);
                resident.remove(&line);
            } else if !resident.contains(&line) {
                let victim = cache.fill(addr, LineState::Shared, LineData::ZERO);
                if let Some(v) = victim {
                    assert!(
                        resident.remove(&v.line.0),
                        "victim {:?} not resident",
                        v.line
                    );
                }
                resident.insert(line);
            } else {
                assert!(cache.access(addr).is_valid());
            }
            assert!(cache.valid_count() <= config.lines());
            assert_eq!(cache.valid_count(), resident.len());
        }
    }
}

/// Cached data round-trips through fills, writes, and victims.
#[test]
fn cache_data_round_trips() {
    let mut rng = DetRng::seed(0xda7a);
    for _ in 0..CASES {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 64 * 64,
            ways: 4,
        });
        let mut model: std::collections::HashMap<u64, LineData> = Default::default();
        let n_lines = rng.range(1, 50);
        for i in 0..n_lines {
            let line = rng.range(0, 32);
            let addr = LineAddr(line);
            let data = LineData::from_seed(i);
            if model.contains_key(&line) {
                cache.write_data(addr, data);
            } else if let Some(v) = cache.fill(addr, LineState::Modified, data) {
                let expect = model.remove(&v.line.0).expect("victim was resident");
                assert_eq!(v.data, expect);
            }
            model.insert(line, data);
            assert_eq!(cache.data_of(addr), Some(data));
        }
    }
}
