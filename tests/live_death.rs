//! Live fabric faults end to end: a node (or link) dies *mid-run* with
//! messages in flight — nothing halts the machine at the injection
//! instant. The survivors keep executing, transaction watchdogs retry the
//! dropped messages with exponential backoff, sends reroute around the
//! dead components, and detection is organic (watchdog strikes, a
//! checkpoint barrier hung on the dead participant, or the heartbeat
//! backstop). Recovery must then produce memory identical to a clean run.

use revive::machine::campaign::{generate, run_scenario, CampaignConfig};
use revive::machine::differential::injected_vs_golden;
use revive::machine::{
    ErrorKind, ExperimentConfig, FaultOutcome, InjectPhase, InjectionPlan, NodeSet, ObsConfig,
    ReviveMode, Runner, ScenarioOutcome, WorkloadSpec,
};
use revive::sim::time::Ns;
use revive::sim::trace::TraceEvent;
use revive::sim::types::NodeId;
use revive::workloads::{AppId, SyntheticKind};

/// A small 4-node parity machine under a traffic-heavy synthetic (the
/// exact-memory oracle's domain), with tracing on so the fault-fabric
/// events (msg_drop / watchdog_timeout / retry / reroute) are observable.
fn cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::test_small(AppId::Lu);
    cfg.revive.mode = ReviveMode::Parity {
        group_data_pages: 3,
    };
    cfg.workload = WorkloadSpec::Synthetic(SyntheticKind::WsExceedsL2);
    cfg.ops_per_cpu = 30_000;
    cfg.obs = ObsConfig {
        trace_capacity: 16 * 1024,
        epoch_us: 0,
    };
    cfg
}

fn plan(kind: ErrorKind, phase: InjectPhase, interval: Ns) -> InjectionPlan {
    InjectionPlan {
        after_checkpoint: 2,
        interval_fraction: 0.4,
        detection_delay: Ns((interval.0 as f64 * 0.3) as u64),
        kind,
        phase,
        second: None,
    }
}

fn count(result: &revive::machine::RunResult, kind: &str) -> u64 {
    let i = TraceEvent::KIND_NAMES
        .iter()
        .position(|n| *n == kind)
        .unwrap();
    result.trace.summary().counts[i]
}

/// The headline scenario: a node dies mid-interval while write-backs and
/// coherence messages are in flight to and from it. In-flight messages
/// crossing the dead router are dropped (traced), detection is organic,
/// and the recovered machine's final memory matches a clean run exactly.
#[test]
fn live_node_death_mid_logging_recovers_exactly() {
    let c = cfg();
    let interval = c.revive.ckpt.interval;
    let (_, golden) = Runner::new(c).unwrap().run_to_image().unwrap();
    let p = plan(
        ErrorKind::LiveNodeLoss(NodeId(1)),
        InjectPhase::MidLogging,
        interval,
    );
    let (result, diff) = injected_vs_golden(c, &[p], &golden).unwrap();
    assert!(diff.is_match(), "memory diverged: {diff}");
    let rec = result.outcomes[0].recovered().expect("recovered");
    assert_ne!(rec.verified, Some(false), "shadow mismatch");
    assert!(rec.report.log_pages_rebuilt > 0, "node memory was rebuilt");
    assert!(result.audits.iter().all(|a| a.is_clean()), "dirty audit");
    // The fault was *live*: messages in flight at the sever (or sent at
    // the dead node afterwards) were actually dropped and traced.
    assert!(count(&result, "msg_drop") > 0, "no in-flight message died");
    // Detection came from the machine, not a script: the watchdog struck
    // out against the dead node (or the hung-barrier check fired).
    assert!(
        count(&result, "watchdog_timeout") > 0,
        "no watchdog timeouts despite a dead node"
    );
}

/// Death exactly inside the two-phase commit: the flush completed, barrier
/// 1 passed, and the victim dies before any log is marked. The barrier can
/// never complete — the watchdog's hung-barrier check unsticks it, and the
/// machine rolls back to the previous checkpoint.
#[test]
fn live_death_during_2pc_barrier_recovers_exactly() {
    let c = cfg();
    let interval = c.revive.ckpt.interval;
    let (_, golden) = Runner::new(c).unwrap().run_to_image().unwrap();
    let p = plan(
        ErrorKind::LiveNodeLoss(NodeId(2)),
        InjectPhase::CommitWindow,
        interval,
    );
    let (result, diff) = injected_vs_golden(c, &[p], &golden).unwrap();
    assert!(diff.is_match(), "memory diverged: {diff}");
    let rec = result.outcomes[0].recovered().expect("recovered");
    assert_ne!(rec.verified, Some(false), "shadow mismatch");
    // The interrupted checkpoint 3 never committed: the sever-time
    // snapshot pins the rollback to checkpoint 2.
    assert_eq!(rec.target_interval, 2);
    assert!(result.audits.iter().all(|a| a.is_clean()), "dirty audit");
}

/// A severed link (both directions between one adjacent pair): no memory
/// is damaged, sends reroute around the cut, watchdogs re-deliver the
/// messages that died on it, and recovery is a pure rollback.
#[test]
fn link_loss_reroutes_and_recovers() {
    let c = cfg();
    let interval = c.revive.ckpt.interval;
    let (_, golden) = Runner::new(c).unwrap().run_to_image().unwrap();
    let p = plan(
        ErrorKind::LinkLoss {
            a: NodeId(0),
            b: NodeId(1),
        },
        InjectPhase::MidLogging,
        interval,
    );
    let (result, diff) = injected_vs_golden(c, &[p], &golden).unwrap();
    assert!(diff.is_match(), "memory diverged: {diff}");
    let rec = result.outcomes[0].recovered().expect("recovered");
    assert_ne!(rec.verified, Some(false), "shadow mismatch");
    // No node died, so nothing was reconstructed from parity.
    assert_eq!(rec.report.log_pages_rebuilt, 0);
    // The cut was actually routed around.
    assert!(count(&result, "reroute") > 0, "no send took a detour");
}

/// Dropped messages whose sender survived must come back: the per-class
/// retry counters record each successful watchdog re-delivery and its
/// drop-to-redelivery latency.
#[test]
fn watchdog_retries_are_counted_per_class() {
    let c = cfg();
    let interval = c.revive.ckpt.interval;
    let p = plan(
        ErrorKind::LinkLoss {
            a: NodeId(1),
            b: NodeId(3),
        },
        InjectPhase::MidLogging,
        interval,
    );
    let result = Runner::new(c).unwrap().run_with_injections(&[p]).unwrap();
    assert!(result.outcomes[0].recovered().is_some());
    let retries = result.metrics.traffic.retry_msgs_total();
    assert_eq!(count(&result, "retry"), retries);
    if retries > 0 {
        let hist_total: u64 = revive::machine::TrafficClass::ALL
            .iter()
            .map(|&cl| result.metrics.retry_latency_hist(cl).total())
            .sum();
        assert_eq!(hist_total, retries, "latency histogram disagrees");
    }
}

/// Killing both torus neighbors of a corner node on the 2×2 machine
/// isolates it from the remaining survivor: recovery must refuse with the
/// typed partition classification, not panic or hang.
#[test]
fn live_partition_is_classified_unrecoverable() {
    let c = cfg();
    let interval = c.revive.ckpt.interval;
    let p = plan(
        ErrorKind::LiveMultiNodeLoss(NodeSet::from_nodes(&[NodeId(1), NodeId(2)])),
        InjectPhase::MidLogging,
        interval,
    );
    let result = Runner::new(c).unwrap().run_with_injections(&[p]).unwrap();
    match &result.outcomes[0] {
        FaultOutcome::Unrecoverable { error, .. } => {
            let reason = error.to_string();
            assert!(
                reason.contains("partition"),
                "classification should name the partition: {reason}"
            );
        }
        other => panic!("expected unrecoverable, got {other:?}"),
    }
    assert!(result.recoveries.is_empty());
}

/// A live kind cannot strike mid-recovery (the machine is halted then —
/// there is no live fabric to sever) and cannot be the second fault.
#[test]
fn live_kinds_rejected_in_recovery_phase() {
    let c = cfg();
    let interval = c.revive.ckpt.interval;
    let p = plan(
        ErrorKind::LiveNodeLoss(NodeId(1)),
        InjectPhase::DuringRecovery,
        interval,
    );
    assert!(Runner::new(c).unwrap().run_with_injections(&[p]).is_err());
    let p2 = InjectionPlan {
        second: Some(ErrorKind::LiveNodeLoss(NodeId(2))),
        ..plan(
            ErrorKind::NodeLoss(NodeId(1)),
            InjectPhase::DuringRecovery,
            interval,
        )
    };
    assert!(Runner::new(c).unwrap().run_with_injections(&[p2]).is_err());
}

/// A non-neighbor pair is not a torus link. On the 2×2 torus nodes 0 and
/// 3 sit on the diagonal (two hops apart), so severing "their link" is a
/// configuration error, not a fault.
#[test]
fn link_loss_requires_torus_neighbors() {
    let c = cfg();
    let interval = c.revive.ckpt.interval;
    let p = plan(
        ErrorKind::LinkLoss {
            a: NodeId(0),
            b: NodeId(3),
        },
        InjectPhase::MidLogging,
        interval,
    );
    assert!(Runner::new(c).unwrap().run_with_injections(&[p]).is_err());
}

/// The acceptance sweep: 25 seeds of the live-only campaign (live node
/// death, live multi-node death, link loss — including 2PC-edge timings).
/// Every scenario must classify as Recovered (oracle-verified) or as a
/// correctly typed Unrecoverable (parity budget or partition) — zero
/// panics, zero hangs, zero oracle mismatches.
#[test]
fn live_campaign_sweep_classifies_every_seed() {
    let gen = CampaignConfig {
        ops_per_cpu: 12_000,
        live_only: true,
        ..CampaignConfig::default()
    };
    let mut recovered = 0usize;
    for seed in 0..25u64 {
        let sc = generate(seed, &gen);
        assert!(
            sc.faults.iter().all(|f| f.kind.is_live()),
            "seed {seed}: non-live kind in a live-only campaign"
        );
        let report = run_scenario(&sc);
        assert!(
            !report.is_failure(),
            "seed {seed} failed: {}",
            report.outcome
        );
        match &report.outcome {
            ScenarioOutcome::Recovered { oracle_match, .. } => {
                assert!(oracle_match, "seed {seed}: oracle diverged");
                recovered += 1;
            }
            ScenarioOutcome::Unrecoverable { reason, .. } => {
                assert!(
                    reason.contains("redundancy budget") || reason.contains("partition"),
                    "seed {seed}: unexpected classification: {reason}"
                );
            }
            _ => {}
        }
    }
    assert!(recovered >= 5, "only {recovered}/25 seeds recovered");
}
