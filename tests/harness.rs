//! Integration tests for the experiment-orchestration harness: parallel
//! sweeps must be byte-identical to serial ones, and the result cache must
//! substitute for runs without perturbing artifacts.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use revive::harness::{Args, Sweep, SweepJob};
use revive::machine::{ExperimentConfig, InjectionPlan, ReviveConfig};
use revive::sim::time::Ns;
use revive::sim::types::NodeId;
use revive::workloads::AppId;

fn small_cfg(app: AppId, revive_on: bool, ops: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::test_small(app);
    if !revive_on {
        cfg.revive = ReviveConfig::off();
        cfg.shadow_checkpoints = false;
    }
    cfg.ops_per_cpu = ops;
    cfg
}

/// Six small jobs spanning clean baseline, clean ReVive, and an injection
/// run — enough shape diversity to catch ordering bugs.
fn jobs() -> Vec<SweepJob> {
    let mut jobs = vec![
        SweepJob::new("lu_base", small_cfg(AppId::Lu, false, 4_000)),
        SweepJob::new("lu_revive", small_cfg(AppId::Lu, true, 4_000)),
        SweepJob::new("fft_base", small_cfg(AppId::Fft, false, 4_000)),
        SweepJob::new("fft_revive", small_cfg(AppId::Fft, true, 4_000)),
        SweepJob::new("radix_revive", small_cfg(AppId::Radix, true, 4_000)),
    ];
    // The injection waits for checkpoint 2: keep test_small's full op
    // budget so the checkpoints actually happen.
    let mut cfg = ExperimentConfig::test_small(AppId::Lu);
    cfg.shadow_checkpoints = true;
    let plan = InjectionPlan::paper_worst_case(cfg.revive.ckpt.interval, NodeId(1));
    jobs.push(SweepJob::with_plans("lu_node_loss", cfg, vec![plan]));
    jobs
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("revive-harness-{tag}-{}", std::process::id()))
}

fn read_artifacts(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("artifact dir") {
        let entry = entry.expect("dir entry");
        out.insert(
            entry.file_name().to_string_lossy().into_owned(),
            std::fs::read(entry.path()).expect("read artifact"),
        );
    }
    out
}

fn sweep_into(dir: &Path, workers: usize) -> Sweep {
    let args = Args {
        jobs: Some(workers),
        ..Args::default()
    };
    Sweep::new("harness_test", &args)
        .with_artifact_dir(dir)
        .quiet()
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let serial_dir = temp_dir("serial");
    let parallel_dir = temp_dir("parallel");
    let serial = sweep_into(&serial_dir, 1).run_all(jobs());
    let parallel = sweep_into(&parallel_dir, 4).run_all(jobs());

    // Outcomes come back in job order with identical simulation results.
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.label, p.label);
        assert_eq!(s.result.sim_time, p.result.sim_time, "{}", s.label);
        assert_eq!(s.result.events, p.result.events, "{}", s.label);
        assert!(!s.cached && !p.cached);
    }
    assert!(serial[5].result.recovery.is_some(), "injection ran");

    // And the artifacts on disk are byte-for-byte the same.
    let a = read_artifacts(&serial_dir);
    let b = read_artifacts(&parallel_dir);
    assert_eq!(a.len(), 6);
    assert_eq!(a, b, "parallel artifacts differ from serial");

    std::fs::remove_dir_all(&serial_dir).ok();
    std::fs::remove_dir_all(&parallel_dir).ok();
}

#[test]
fn cached_rerun_skips_runs_and_preserves_artifacts() {
    let dir = temp_dir("cache");
    let fresh = sweep_into(&dir, 2).run_all(jobs());
    assert!(fresh.iter().all(|o| !o.cached));
    let before = read_artifacts(&dir);

    // Second pass: every job is served from the cache, with the same
    // results, and the artifacts are untouched.
    let cached = sweep_into(&dir, 2).run_all(jobs());
    for (f, c) in fresh.iter().zip(&cached) {
        assert!(c.cached, "{} was not served from cache", c.label);
        assert_eq!(f.result.sim_time, c.result.sim_time);
        assert_eq!(f.result.events, c.result.events);
        assert_eq!(f.result.checkpoints, c.result.checkpoints);
        assert_eq!(
            f.result.recovery.map(|r| r.unavailable),
            c.result.recovery.map(|r| r.unavailable)
        );
    }
    assert_eq!(before, read_artifacts(&dir), "cache hits rewrote artifacts");

    // A changed configuration must miss: bump one job's op budget.
    let mut changed = jobs();
    changed[0].cfg.ops_per_cpu += 1_000;
    let third = sweep_into(&dir, 2).run_all(changed);
    assert!(!third[0].cached, "edited config must invalidate the cache");
    assert!(third[1..].iter().all(|o| o.cached));

    // --no-cache forces runs even with valid artifacts present.
    let no_cache = Sweep::new(
        "harness_test",
        &Args {
            jobs: Some(2),
            no_cache: true,
            ..Args::default()
        },
    )
    .with_artifact_dir(&dir)
    .quiet()
    .run_all(jobs());
    assert!(no_cache.iter().all(|o| !o.cached));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cached_results_round_trip_every_consumed_metric() {
    let dir = temp_dir("roundtrip");
    let fresh = sweep_into(&dir, 1).run_all(jobs());
    let cached = sweep_into(&dir, 1).run_all(jobs());
    for (f, c) in fresh.iter().zip(&cached) {
        assert!(c.cached);
        let (a, b) = (&f.result, &c.result);
        assert_eq!(a.sim_time, b.sim_time);
        assert_eq!(a.checkpoints, b.checkpoints);
        assert_eq!(a.metrics.traffic.cpu_ops, b.metrics.traffic.cpu_ops);
        assert_eq!(a.metrics.traffic.net_bytes, b.metrics.traffic.net_bytes);
        assert_eq!(
            a.metrics.traffic.mem_accesses,
            b.metrics.traffic.mem_accesses
        );
        assert_eq!(a.metrics.log_high_water, b.metrics.log_high_water);
        assert_eq!(a.metrics.costs, b.metrics.costs);
        assert_eq!(a.recoveries.len(), b.recoveries.len());
        for (ra, rb) in a.recoveries.iter().zip(&b.recoveries) {
            assert_eq!(ra.report, rb.report);
            assert_eq!(ra.lost_work, rb.lost_work);
            assert_eq!(ra.unavailable, rb.unavailable);
            assert_eq!(ra.verified, rb.verified);
        }
        assert!(a.sim_time > Ns::ZERO);
    }
    std::fs::remove_dir_all(&dir).ok();
}
