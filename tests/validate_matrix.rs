//! The recovery-correctness injection matrix.
//!
//! Each case runs a workload twice — a clean golden run and a run that
//! suffers an injected error and recovers — and asserts that the final
//! functional memory is word-for-word identical, that recovery verified
//! against the shadow checkpoint, and that every validation audit (parity
//! sweeps at each commit and after recovery, log round-trips against the
//! software shadow) came back clean.
//!
//! The matrix sweeps error kinds × injection phases × applications. The
//! applications are the private-region synthetics: their per-CPU streams
//! are deterministic and their regions disjoint, so a clean run's final
//! memory is a well-defined oracle. (Shared-region workloads race by
//! design — cross-CPU store order is timing, not semantics — so exact
//! memory equality is not their correctness criterion.)

use revive::machine::differential::injected_vs_golden;
use revive::machine::{
    ErrorKind, ExperimentConfig, InjectPhase, InjectionPlan, Runner, WorkloadSpec,
};
use revive::sim::time::Ns;
use revive::sim::types::NodeId;
use revive::workloads::{AppId, SyntheticKind};

const APPS: [SyntheticKind; 2] = [SyntheticKind::WsExceedsL2, SyntheticKind::WsFitsDirty];

const KINDS: [ErrorKind; 3] = [
    ErrorKind::NodeLoss(NodeId(1)),
    ErrorKind::CacheWipe,
    ErrorKind::DirectoryCorrupt,
];

fn cfg(app: SyntheticKind) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::test_small(AppId::Lu);
    cfg.workload = WorkloadSpec::Synthetic(app);
    cfg.ops_per_cpu = 40_000;
    cfg
}

fn plan(kind: ErrorKind, phase: InjectPhase, interval: Ns) -> InjectionPlan {
    InjectionPlan {
        after_checkpoint: 2,
        interval_fraction: 0.4,
        detection_delay: Ns((interval.0 as f64 * 0.3) as u64),
        kind,
        phase,
        second: None,
    }
}

fn run_matrix_phase(phase: InjectPhase) {
    for app in APPS {
        let c = cfg(app);
        let interval = c.revive.ckpt.interval;
        let (_, golden_image) = Runner::new(c).unwrap().run_to_image().unwrap();
        for kind in KINDS {
            let label = format!("{app}/{kind:?}/{phase:?}");
            let (result, diff) =
                injected_vs_golden(c, &[plan(kind, phase, interval)], &golden_image).unwrap();
            let rec = result
                .recovery
                .unwrap_or_else(|| panic!("{label}: no recovery"));
            assert!(
                diff.is_match(),
                "{label}: post-recovery memory diverges from golden run: {diff}"
            );
            assert_eq!(
                rec.verified,
                Some(true),
                "{label}: shadow verification failed"
            );
            assert!(
                rec.ops_rolled_back > 0,
                "{label}: rollback discarded no work"
            );
            assert!(!result.audits.is_empty(), "{label}: no audits ran");
            for audit in &result.audits {
                assert!(audit.is_clean(), "{label}: audit failed: {audit}");
            }
        }
    }
}

#[test]
fn matrix_mid_logging() {
    run_matrix_phase(InjectPhase::MidLogging);
}

#[test]
fn matrix_commit_window() {
    run_matrix_phase(InjectPhase::CommitWindow);
}

#[test]
fn matrix_during_recovery() {
    run_matrix_phase(InjectPhase::DuringRecovery);
}
