//! Store-loss oracle: a clean run's final memory must equal a pure
//! functional replay of the op streams.
//!
//! Every store writes a unique token into a deterministic quadword, so the
//! expected final value of every written quadword can be computed offline
//! by walking the workload streams. Any divergence means the machine lost
//! or misordered a store. This is the oracle that caught the
//! checkpoint-flush/eviction write-back reorder race: a line flushed during
//! the checkpoint interrupt window could have its dirty data silently
//! dropped at the home when a clean eviction notice overtook the flush
//! write-back on the same cache→home path.

use revive::machine::{ExperimentConfig, System, WorkloadSpec};
use revive::workloads::{AppId, SyntheticKind};
use std::collections::HashMap;

fn check_oracle(kind: SyntheticKind) {
    let mut cfg = ExperimentConfig::test_small(AppId::Lu);
    cfg.workload = WorkloadSpec::Synthetic(kind);
    cfg.ops_per_cpu = 30_000;
    let cpus = cfg.machine.nodes;
    let mut sys = System::new(cfg).unwrap();
    sys.run();
    let image = sys.memory_image();

    // Offline replay: last write token per (vpage, line, quadword). Tokens
    // mirror System::make_token / CacheCtrl::apply_write.
    let mut w = WorkloadSpec::Synthetic(kind).build(cpus, cfg.machine.scale(), cfg.seed);
    let mut expect: HashMap<(u64, usize, usize), u64> = HashMap::new();
    for c in 0..cpus {
        for p in 0..cfg.ops_per_cpu {
            let op = w.next(c);
            if op.write {
                let vpage = op.vaddr / 4096;
                let line = (op.vaddr % 4096) as usize / 64;
                let q = (p % 8) as usize;
                let token = (p & 0x0000_7FFF_FFFF_FFFF) | ((c as u64) << 47) | (1 << 63);
                expect.insert((vpage, line, q), token ^ 0xC0FF_EE00_0000_0000);
            }
        }
    }
    assert!(!expect.is_empty(), "workload issued no stores");
    let mut lost = Vec::new();
    for (&(vpage, line, q), &want) in &expect {
        let page = image.pages.get(&vpage).expect("written page mapped");
        let off = line * 64 + q * 8;
        let got = u64::from_le_bytes(page[off..off + 8].try_into().unwrap());
        if got != want {
            lost.push((vpage, line, q, want, got));
        }
    }
    assert!(
        lost.is_empty(),
        "{kind}: {} stores lost (first: vpage {:#x} line {} q {}: want {:#x} got {:#x})",
        lost.len(),
        lost[0].0,
        lost[0].1,
        lost[0].2,
        lost[0].3,
        lost[0].4,
    );
}

#[test]
fn clean_run_matches_functional_replay_streaming() {
    check_oracle(SyntheticKind::WsExceedsL2);
}

#[test]
fn clean_run_matches_functional_replay_dirty() {
    check_oracle(SyntheticKind::WsFitsDirty);
}
