//! Fault-campaign integration tests: two-phase-commit boundary faults,
//! mid-recovery double faults (within and beyond the parity budget), and
//! the seed-driven campaign engine end to end.

use revive::machine::campaign::{
    generate, run_scenario, BackendChoice, CampaignConfig, FaultSpec, Scenario,
};
use revive::machine::differential::injected_vs_golden;
use revive::machine::{
    CommitPoint, ErrorKind, ExperimentConfig, FaultOutcome, InjectPhase, InjectionPlan, NodeSet,
    ReviveMode, Runner, ScenarioOutcome, WorkloadSpec,
};
use revive::sim::time::Ns;
use revive::sim::types::NodeId;
use revive::workloads::{AppId, SyntheticKind};

/// A small parity machine driving a private-region synthetic (the
/// exact-memory oracle's domain), at `nodes` nodes with `group` data
/// pages per parity group.
fn cfg(nodes: usize, group: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::test_small(AppId::Lu);
    cfg.machine.nodes = nodes;
    cfg.revive.mode = ReviveMode::Parity {
        group_data_pages: group,
    };
    cfg.workload = WorkloadSpec::Synthetic(SyntheticKind::WsExceedsL2);
    cfg.ops_per_cpu = 30_000;
    cfg
}

fn plan(kind: ErrorKind, phase: InjectPhase, interval: Ns) -> InjectionPlan {
    InjectionPlan {
        after_checkpoint: 2,
        interval_fraction: 0.4,
        detection_delay: Ns((interval.0 as f64 * 0.3) as u64),
        kind,
        phase,
        second: None,
    }
}

/// Faults landing exactly on each 2PC boundary (after barrier 1, after
/// the mark, after commit/reclaim) must leave the surviving checkpoint
/// consistent: the machine rolls back to the right checkpoint for that
/// edge, replays, and finishes with memory identical to a clean run.
#[test]
fn faults_on_every_commit_boundary_recover_exactly() {
    let c = cfg(4, 3);
    let interval = c.revive.ckpt.interval;
    let (_, golden) = Runner::new(c).unwrap().run_to_image().unwrap();
    for point in [
        CommitPoint::AfterBarrier1,
        CommitPoint::AfterMark,
        CommitPoint::AfterCommit,
    ] {
        for kind in [ErrorKind::NodeLoss(NodeId(1)), ErrorKind::CacheWipe] {
            let label = format!("{point:?}/{kind:?}");
            let p = plan(kind, InjectPhase::CommitEdge(point), interval);
            let (result, diff) = injected_vs_golden(c, &[p], &golden).unwrap();
            assert!(diff.is_match(), "{label}: memory diverged: {diff}");
            let rec = result.recovery.expect("recovered");
            // A fault before barrier 2 aborts the in-flight checkpoint 3:
            // the machine must fall back to checkpoint 2. After the
            // commit completes, checkpoint 3 is established and is itself
            // the target — rollback discards exactly nothing.
            let want_target = match point {
                CommitPoint::AfterBarrier1 | CommitPoint::AfterMark => 2,
                CommitPoint::AfterCommit => 3,
            };
            assert_eq!(rec.target_interval, want_target, "{label}");
            assert_ne!(rec.verified, Some(false), "{label}: shadow mismatch");
            assert!(
                result.audits.iter().all(|a| a.is_clean()),
                "{label}: dirty audit"
            );
        }
    }
}

/// A second node loss striking while the first recovery is still
/// rebuilding: when the union of the losses stays within the parity
/// budget (different chunks), the restarted recovery must reconstruct
/// both nodes and the run must still match the golden image.
#[test]
fn double_fault_across_chunks_recovers_within_budget() {
    // 9 nodes, 2+1 parity: chunks {0,1,2}, {3,4,5}, {6,7,8}. Nodes 1 and
    // 5 never share a chunk, so the double loss is within the budget.
    let c = cfg(9, 2);
    let interval = c.revive.ckpt.interval;
    let (_, golden) = Runner::new(c).unwrap().run_to_image().unwrap();
    let p = InjectionPlan {
        second: Some(ErrorKind::NodeLoss(NodeId(5))),
        ..plan(
            ErrorKind::NodeLoss(NodeId(1)),
            InjectPhase::DuringRecovery,
            interval,
        )
    };
    let (result, diff) = injected_vs_golden(c, &[p], &golden).unwrap();
    assert!(diff.is_match(), "memory diverged: {diff}");
    assert_eq!(result.outcomes.len(), 1);
    let rec = result.outcomes[0].recovered().expect("within budget");
    assert_ne!(rec.verified, Some(false));
    assert!(result.audits.iter().all(|a| a.is_clean()));
}

/// The same double fault, but the second loss lands in the first loss's
/// parity chunk: beyond the budget. The machine must refuse with a typed
/// classification — never panic — and stay halted.
#[test]
fn double_fault_in_one_chunk_is_classified_unrecoverable() {
    // 4 nodes, 3+1 parity: a single chunk covers the whole machine, so
    // ANY simultaneous double loss is beyond the budget.
    let c = cfg(4, 3);
    let interval = c.revive.ckpt.interval;
    let p = InjectionPlan {
        second: Some(ErrorKind::NodeLoss(NodeId(2))),
        ..plan(
            ErrorKind::NodeLoss(NodeId(1)),
            InjectPhase::DuringRecovery,
            interval,
        )
    };
    let result = Runner::new(c).unwrap().run_with_injections(&[p]).unwrap();
    assert_eq!(result.outcomes.len(), 1);
    match &result.outcomes[0] {
        FaultOutcome::Unrecoverable { error, .. } => {
            let reason = error.to_string();
            assert!(
                reason.contains("redundancy budget"),
                "classification should name the budget: {reason}"
            );
        }
        other => panic!("expected an unrecoverable classification, got {other:?}"),
    }
    // No recovery completed, so the recovery lists stay empty and the
    // sim never resumed past the fault.
    assert!(result.recoveries.is_empty());
    assert!(result.recovery.is_none());
}

/// A simultaneous multi-node loss beyond the budget is equally typed.
#[test]
fn simultaneous_multi_node_loss_beyond_budget_is_typed() {
    let c = cfg(4, 3);
    let interval = c.revive.ckpt.interval;
    let p = plan(
        ErrorKind::MultiNodeLoss(NodeSet::from_nodes(&[NodeId(1), NodeId(2)])),
        InjectPhase::MidLogging,
        interval,
    );
    let result = Runner::new(c).unwrap().run_with_injections(&[p]).unwrap();
    assert!(result.outcomes[0].is_unrecoverable());
}

/// A simultaneous double loss *within* the budget (cross-chunk on the
/// 9-node machine) reconstructs both nodes in one recovery.
#[test]
fn simultaneous_cross_chunk_loss_recovers() {
    let c = cfg(9, 2);
    let interval = c.revive.ckpt.interval;
    let (_, golden) = Runner::new(c).unwrap().run_to_image().unwrap();
    let p = plan(
        ErrorKind::MultiNodeLoss(NodeSet::from_nodes(&[NodeId(2), NodeId(7)])),
        InjectPhase::MidLogging,
        interval,
    );
    let (result, diff) = injected_vs_golden(c, &[p], &golden).unwrap();
    assert!(diff.is_match(), "memory diverged: {diff}");
    assert!(result.outcomes[0].recovered().is_some());
}

/// Regression (campaign seed 72, minimized): two *sequential* faults,
/// where the second rolls back to a checkpoint re-committed after the
/// first recovery. The first rollback rewinds the checkpoint counter, so
/// interval ids are reused on the replayed timeline — with different
/// contents, because recovery shifts the checkpoint boundaries. Stale
/// shadow snapshots from the discarded timeline must be pruned at
/// rollback or the second recovery falsely fails shadow verification.
#[test]
fn sequential_faults_verify_against_the_replayed_timeline() {
    let fault = |kind, detection_fraction| FaultSpec {
        after_checkpoint: 1,
        interval_fraction: 0.5,
        detection_fraction,
        kind,
        phase: InjectPhase::MidLogging,
        second: None,
    };
    let sc = Scenario {
        seed: 72,
        app: SyntheticKind::WsExceedsL2,
        backend: BackendChoice::Xor,
        nodes: 9,
        group_data_pages: 2,
        ops_per_cpu: 10_000,
        faults: vec![
            fault(ErrorKind::CacheWipe, 0.8),
            fault(ErrorKind::DirectoryCorrupt, 0.0),
        ],
    };
    let report = run_scenario(&sc);
    match report.outcome {
        ScenarioOutcome::Recovered {
            oracle_match,
            verified,
            audits_clean,
            recoveries,
            ..
        } => {
            assert!(oracle_match, "oracle diverged");
            assert!(verified, "stale-timeline shadow consulted");
            assert!(audits_clean, "dirty audit");
            assert_eq!(recoveries, 2);
        }
        other => panic!("expected two clean recoveries, got {other}"),
    }
}

/// A bounded slice of the real campaign: every seed must classify as
/// recovered (oracle-verified), unrecoverable (typed), or not-fired —
/// and never as a panic or an oracle mismatch.
#[test]
fn campaign_slice_classifies_every_scenario() {
    let gen = CampaignConfig {
        ops_per_cpu: 25_000,
        ..CampaignConfig::default()
    };
    let mut seen_unrecoverable = false;
    for seed in 0..6 {
        let sc = generate(seed, &gen);
        let report = run_scenario(&sc);
        assert!(
            !report.is_failure(),
            "seed {seed} failed: {}",
            report.outcome
        );
        match report.outcome {
            ScenarioOutcome::Unrecoverable { .. } => seen_unrecoverable = true,
            ScenarioOutcome::Recovered { oracle_match, .. } => assert!(oracle_match),
            _ => {}
        }
    }
    // The seed window is chosen to include at least one beyond-budget
    // scenario (seed 5: a double loss in the xor backend's single chunk),
    // exercising graceful degradation under the oracle harness.
    assert!(seen_unrecoverable, "no unrecoverable scenario in 0..6");
}
