//! Multi-node-loss recovery under the pluggable redundancy backends.
//!
//! The XOR backend rebuilds at most one lost node per group; double
//! parity (P+Q over GF(256)) rebuilds any two, and k-replication any k.
//! These tests kill two nodes of the *same* chunk — exactly the case the
//! paper's N+1 parity cannot survive — both scripted (the machine halts
//! at the injection instant) and live (messages in flight, organic
//! detection), and require byte-exact recovery under the richer
//! backends. Losses beyond each backend's budget must still classify as
//! typed unrecoverable outcomes, never panics.

use revive::machine::differential::injected_vs_golden;
use revive::machine::{
    ErrorKind, ExperimentConfig, FaultOutcome, InjectPhase, InjectionPlan, NodeSet, ReviveMode,
    Runner, WorkloadSpec,
};
use revive::sim::time::Ns;
use revive::sim::types::NodeId;
use revive::workloads::{AppId, SyntheticKind};

/// A 9-node machine (3×3 torus: three independent chunks, and no pair of
/// node deaths can partition it) under a traffic-heavy private-region
/// synthetic, with the redundancy mode chosen per test.
fn cfg(mode: ReviveMode) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::test_small(AppId::Lu);
    cfg.machine.nodes = 9;
    cfg.revive.mode = mode;
    cfg.workload = WorkloadSpec::Synthetic(SyntheticKind::WsExceedsL2);
    cfg.ops_per_cpu = 30_000;
    cfg
}

/// Chunk 3 on the 9-node machine: one data page, P, and Q per group.
fn double_parity() -> ReviveMode {
    ReviveMode::DoubleParity {
        group_data_pages: 1,
    }
}

/// Chunk 3 on the 9-node machine: each primary keeps two replicas.
fn replication() -> ReviveMode {
    ReviveMode::Replication { replicas: 2 }
}

fn plan(kind: ErrorKind, phase: InjectPhase, interval: Ns) -> InjectionPlan {
    InjectionPlan {
        after_checkpoint: 2,
        interval_fraction: 0.4,
        detection_delay: Ns((interval.0 as f64 * 0.3) as u64),
        kind,
        phase,
        second: None,
    }
}

/// Nodes 1 and 2 share the first chunk `{0, 1, 2}` under every chunk-3
/// backend, so their simultaneous death is the canonical beyond-XOR case.
fn same_chunk_pair() -> NodeSet {
    NodeSet::from_nodes(&[NodeId(1), NodeId(2)])
}

/// Runs a scripted (halt-at-injection) simultaneous loss under `mode` and
/// requires byte-exact recovery.
fn scripted_loss_recovers(mode: ReviveMode, lost: NodeSet) {
    let c = cfg(mode);
    let interval = c.revive.ckpt.interval;
    let (_, golden) = Runner::new(c).unwrap().run_to_image().unwrap();
    let p = plan(
        ErrorKind::MultiNodeLoss(lost),
        InjectPhase::MidLogging,
        interval,
    );
    let (result, diff) = injected_vs_golden(c, &[p], &golden).unwrap();
    assert!(diff.is_match(), "memory diverged: {diff}");
    let rec = result.outcomes[0].recovered().expect("within budget");
    assert_ne!(rec.verified, Some(false), "shadow mismatch");
    assert!(rec.report.log_pages_rebuilt > 0, "lost memory was rebuilt");
    assert!(result.audits.iter().all(|a| a.is_clean()), "dirty audit");
}

/// Runs a live (messages in flight, organic detection) simultaneous loss
/// under `mode` and requires byte-exact recovery.
fn live_loss_recovers(mode: ReviveMode, lost: NodeSet) {
    let c = cfg(mode);
    let interval = c.revive.ckpt.interval;
    let (_, golden) = Runner::new(c).unwrap().run_to_image().unwrap();
    let p = plan(
        ErrorKind::LiveMultiNodeLoss(lost),
        InjectPhase::MidLogging,
        interval,
    );
    let (result, diff) = injected_vs_golden(c, &[p], &golden).unwrap();
    assert!(diff.is_match(), "memory diverged: {diff}");
    let rec = result.outcomes[0].recovered().expect("within budget");
    assert_ne!(rec.verified, Some(false), "shadow mismatch");
    assert!(rec.report.log_pages_rebuilt > 0, "lost memory was rebuilt");
    assert!(result.audits.iter().all(|a| a.is_clean()), "dirty audit");
}

/// Requires the loss to classify as a typed beyond-budget refusal.
fn loss_is_beyond_budget(mode: ReviveMode, lost: NodeSet) {
    let c = cfg(mode);
    let interval = c.revive.ckpt.interval;
    let p = plan(
        ErrorKind::MultiNodeLoss(lost),
        InjectPhase::MidLogging,
        interval,
    );
    let result = Runner::new(c).unwrap().run_with_injections(&[p]).unwrap();
    match &result.outcomes[0] {
        FaultOutcome::Unrecoverable { error, .. } => {
            let reason = error.to_string();
            assert!(
                reason.contains("redundancy budget"),
                "classification should name the budget: {reason}"
            );
        }
        other => panic!("expected an unrecoverable classification, got {other:?}"),
    }
    assert!(result.recoveries.is_empty());
}

/// Double parity survives a scripted same-chunk double loss: both nodes
/// are rebuilt from P+Q and the final memory matches a clean run.
#[test]
fn double_parity_scripted_two_node_loss_recovers_exactly() {
    scripted_loss_recovers(double_parity(), same_chunk_pair());
}

/// The same double loss struck *live*: survivors keep running, watchdogs
/// detect, and recovery is still byte-exact.
#[test]
fn double_parity_live_two_node_loss_recovers_exactly() {
    live_loss_recovers(double_parity(), same_chunk_pair());
}

/// k=2 replication survives the scripted same-chunk double loss (each
/// lost page has a surviving replica).
#[test]
fn replication_scripted_two_node_loss_recovers_exactly() {
    scripted_loss_recovers(replication(), same_chunk_pair());
}

/// The same double loss struck live under k=2 replication.
#[test]
fn replication_live_two_node_loss_recovers_exactly() {
    live_loss_recovers(replication(), same_chunk_pair());
}

/// Losing an entire chunk (three nodes) exceeds double parity's budget of
/// two: the machine must refuse with the typed classification.
#[test]
fn double_parity_three_node_loss_is_unrecoverable() {
    loss_is_beyond_budget(
        double_parity(),
        NodeSet::from_nodes(&[NodeId(0), NodeId(1), NodeId(2)]),
    );
}

/// The whole-chunk loss equally exceeds k=2 replication (primary and both
/// replicas are gone).
#[test]
fn replication_three_node_loss_is_unrecoverable() {
    loss_is_beyond_budget(
        replication(),
        NodeSet::from_nodes(&[NodeId(0), NodeId(1), NodeId(2)]),
    );
}

/// A fault detected after the rollback target's logs were reclaimed is a
/// typed refusal, not a panic. Value-logging backends make this easy to
/// hit: replication's log pressure forces early checkpoints during the
/// detection window, and with a short retention window the commits march
/// past the target before detection fires (paper §3.1.2 — recoverability
/// assumes detection latency bounded by the retained-checkpoint window).
#[test]
fn late_detection_past_the_retention_window_is_unrecoverable() {
    let mut c = cfg(replication());
    c.revive.ckpt.retained = 2;
    let interval = c.revive.ckpt.interval;
    let p = InjectionPlan {
        after_checkpoint: 2,
        interval_fraction: 0.4,
        detection_delay: Ns(interval.0 * 8),
        kind: ErrorKind::NodeLoss(NodeId(1)),
        phase: InjectPhase::MidLogging,
        second: None,
    };
    let result = Runner::new(c).unwrap().run_with_injections(&[p]).unwrap();
    match &result.outcomes[0] {
        FaultOutcome::Unrecoverable { error, .. } => {
            let reason = error.to_string();
            assert!(
                reason.contains("detected too late"),
                "classification should name the stale target: {reason}"
            );
        }
        other => panic!("expected an unrecoverable classification, got {other:?}"),
    }
    assert!(result.recoveries.is_empty());
}

/// Regression: the richer backends must not have loosened XOR parity —
/// a same-chunk double loss is still beyond its budget of one.
#[test]
fn xor_two_node_same_chunk_loss_stays_unrecoverable() {
    loss_is_beyond_budget(
        ReviveMode::Parity {
            group_data_pages: 2,
        },
        same_chunk_pair(),
    );
}
