//! End-to-end integration tests: full machine, coherence, ReVive, recovery.

use revive::machine::{
    ErrorKind, ExperimentConfig, InjectionPlan, ReviveConfig, Runner, WorkloadSpec,
};
use revive::sim::time::Ns;
use revive::sim::types::NodeId;
use revive::workloads::{AppId, SyntheticKind};

fn baseline_cfg(app: AppId) -> ExperimentConfig {
    ExperimentConfig {
        revive: ReviveConfig::off(),
        shadow_checkpoints: false,
        ..ExperimentConfig::test_small(app)
    }
}

#[test]
fn baseline_run_completes() {
    let result = Runner::new(baseline_cfg(AppId::Lu)).unwrap().run().unwrap();
    assert!(result.sim_time > Ns::ZERO);
    assert_eq!(result.checkpoints, 0);
    assert_eq!(result.metrics.traffic.cpu_ops, 4 * 60_000);
    assert!(result.metrics.l2_miss_rate() > 0.0);
    assert!(result.metrics.traffic.net_bytes_total() > 0);
}

#[test]
fn revive_run_checkpoints_and_logs() {
    let cfg = ExperimentConfig::test_small(AppId::Fft);
    let result = Runner::new(cfg).unwrap().run().unwrap();
    assert!(
        result.checkpoints >= 2,
        "checkpoints={}",
        result.checkpoints
    );
    assert_eq!(result.ckpt.count(), result.checkpoints);
    assert!(result.metrics.max_log_bytes() > 0);
    // ReVive produced parity and log traffic.
    use revive::machine::TrafficClass;
    assert!(result.metrics.traffic.net_bytes[TrafficClass::Par.index()] > 0);
    assert!(result.metrics.traffic.mem_accesses[TrafficClass::Log.index()] > 0);
    assert!(result.metrics.traffic.mem_accesses[TrafficClass::CkpWb.index()] > 0);
}

#[test]
fn revive_slower_than_baseline_but_bounded() {
    let base = Runner::new(baseline_cfg(AppId::Radix))
        .unwrap()
        .run()
        .unwrap();
    let revive = Runner::new(ExperimentConfig {
        shadow_checkpoints: false,
        ..ExperimentConfig::test_small(AppId::Radix)
    })
    .unwrap()
    .run()
    .unwrap();
    assert!(revive.sim_time >= base.sim_time);
    // The test machine is deliberately tiny (1 KB L1 / 4 KB L2 / 200 µs
    // checkpoints), so Radix — the paper's worst case — pays a large but
    // bounded penalty here; realistic overheads are measured at experiment
    // scale by `bench/fig8_overhead`.
    let overhead = (revive.sim_time.0 as f64 - base.sim_time.0 as f64) / base.sim_time.0 as f64;
    assert!(overhead < 6.0, "overhead {overhead} is implausibly high");
}

#[test]
fn runs_are_deterministic() {
    let a = Runner::new(ExperimentConfig::test_small(AppId::Barnes))
        .unwrap()
        .run()
        .unwrap();
    let b = Runner::new(ExperimentConfig::test_small(AppId::Barnes))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(a.sim_time, b.sim_time);
    assert_eq!(a.events, b.events);
    assert_eq!(a.metrics.traffic.net_bytes, b.metrics.traffic.net_bytes);
    assert_eq!(a.metrics.l2_misses, b.metrics.l2_misses);
}

#[test]
fn node_loss_recovery_is_value_exact() {
    let cfg = ExperimentConfig::test_small(AppId::Ocean);
    let interval = cfg.revive.ckpt.interval;
    let plan = InjectionPlan::paper_worst_case(interval, NodeId(2));
    let result = Runner::new(cfg).unwrap().run_with_injection(plan).unwrap();
    let rec = result.recovery.expect("recovery ran");
    assert_eq!(rec.verified, Some(true), "memory mismatch after recovery");
    assert!(rec.report.log_pages_rebuilt > 0);
    assert!(rec.report.entries_replayed > 0);
    assert!(rec.lost_work > Ns::ZERO);
    assert!(rec.unavailable > rec.report.unavailable());
    // The machine kept running afterwards and finished its budget.
    assert_eq!(result.metrics.traffic.cpu_ops, 4 * 60_000);
}

#[test]
fn transient_error_recovery_is_value_exact() {
    let cfg = ExperimentConfig::test_small(AppId::Cholesky);
    let interval = cfg.revive.ckpt.interval;
    let plan = InjectionPlan::paper_transient(interval);
    let result = Runner::new(cfg).unwrap().run_with_injection(plan).unwrap();
    let rec = result.recovery.expect("recovery ran");
    assert_eq!(rec.verified, Some(true));
    // No memory lost: phase 2 is skipped entirely.
    assert_eq!(rec.report.phase2, Ns::ZERO);
    assert_eq!(rec.report.log_pages_rebuilt, 0);
    assert!(rec.report.entries_replayed > 0);
}

#[test]
fn mirroring_mode_recovers_too() {
    let mut cfg = ExperimentConfig::test_small(AppId::Fft);
    let retained = cfg.revive.ckpt.retained;
    let log_fraction = cfg.revive.log_fraction;
    cfg.revive = ReviveConfig::mirroring(cfg.revive.ckpt.interval);
    cfg.revive.ckpt.retained = retained;
    cfg.revive.log_fraction = log_fraction;
    cfg.ops_per_cpu = 60_000; // enough work to span several checkpoints
    let interval = cfg.revive.ckpt.interval;
    // Mirroring halves the allocatable memory, so the tiny test log fills
    // fast and checkpoints trigger early; keep the detection window short
    // so the recovered checkpoint stays within the retained set (the paper
    // likewise scales detection latency with the checkpoint interval).
    let plan = InjectionPlan {
        detection_delay: Ns((interval.0 as f64 * 0.2) as u64),
        interval_fraction: 0.3,
        ..InjectionPlan::paper_worst_case(interval, NodeId(1))
    };
    let result = Runner::new(cfg).unwrap().run_with_injection(plan).unwrap();
    assert_eq!(result.recovery.unwrap().verified, Some(true));
}

#[test]
fn synthetic_workloads_run() {
    for kind in SyntheticKind::ALL {
        let mut cfg = ExperimentConfig::test_small(AppId::Lu);
        cfg.workload = WorkloadSpec::Synthetic(kind);
        cfg.ops_per_cpu = 5_000;
        cfg.shadow_checkpoints = false;
        let r = Runner::new(cfg).unwrap().run().unwrap();
        assert_eq!(r.metrics.traffic.cpu_ops, 4 * 5_000, "{kind}");
    }
}

#[test]
fn injection_into_baseline_is_rejected() {
    let cfg = baseline_cfg(AppId::Lu);
    let plan = InjectionPlan {
        after_checkpoint: 1,
        interval_fraction: 0.5,
        detection_delay: Ns::from_us(10),
        kind: ErrorKind::CacheWipe,
        ..InjectionPlan::paper_transient(Ns::from_us(100))
    };
    assert!(Runner::new(cfg).unwrap().run_with_injection(plan).is_err());
}

#[test]
fn table1_costs_are_accounted() {
    let result = Runner::new(ExperimentConfig::test_small(AppId::Radix))
        .unwrap()
        .run()
        .unwrap();
    let c = result.metrics.costs;
    // A write-heavy workload exercises every Table 1 event class.
    assert!(c.rdx_unlogged > 0, "no Fig 5(a) events");
    assert!(c.wb_logged > 0, "no Fig 4 events");
    assert!(c.paper_mem_accesses() > 0);
}

#[test]
fn lossy_lbits_machine_still_recovers_exactly() {
    // Section 4.1.2: L bits kept only in a small directory cache lose
    // entries and cause redundant log records; correctness is unaffected
    // because replay runs in reverse order. Run the full machine that way
    // and verify a node-loss recovery byte-for-byte.
    let mut cfg = ExperimentConfig::test_small(AppId::Ocean);
    cfg.revive.lbit_dir_cache = Some(16); // tiny: plenty of evictions
    let interval = cfg.revive.ckpt.interval;
    let plan = InjectionPlan::paper_worst_case(interval, NodeId(3));
    let result = Runner::new(cfg).unwrap().run_with_injection(plan).unwrap();
    let rec = result.recovery.expect("recovery ran");
    assert_eq!(rec.verified, Some(true));
}

#[test]
fn lossy_lbits_log_more_than_full_lbits() {
    let full = Runner::new(ExperimentConfig::test_small(AppId::Fft))
        .unwrap()
        .run()
        .unwrap();
    let mut cfg = ExperimentConfig::test_small(AppId::Fft);
    cfg.revive.lbit_dir_cache = Some(8);
    let lossy = Runner::new(cfg).unwrap().run().unwrap();
    let appended =
        |r: &revive::machine::RunResult| r.metrics.costs.rdx_unlogged + r.metrics.costs.wb_unlogged;
    assert!(
        appended(&lossy) > appended(&full),
        "lossy L bits should produce redundant log records: {} vs {}",
        appended(&lossy),
        appended(&full)
    );
}

#[test]
fn larger_parity_groups_use_less_memory_but_same_protection() {
    // 16-node machine: compare 3+1 vs 7+1 storage overhead while both
    // recover a lost node exactly.
    use revive::machine::{MachineConfig, ReviveMode};
    for group in [3usize, 7] {
        let mut cfg = ExperimentConfig {
            machine: MachineConfig::test_small(),
            ..ExperimentConfig::test_small(AppId::Lu)
        };
        cfg.machine.nodes = 16;
        cfg.revive.mode = ReviveMode::Parity {
            group_data_pages: group,
        };
        cfg.ops_per_cpu = 100_000; // enough work for several checkpoints
        let interval = cfg.revive.ckpt.interval;
        let plan = InjectionPlan::paper_worst_case(interval, NodeId(9));
        let result = Runner::new(cfg).unwrap().run_with_injection(plan).unwrap();
        assert_eq!(
            result.recovery.unwrap().verified,
            Some(true),
            "group size {group}"
        );
    }
}

#[test]
fn mixed_mode_recovers_exactly() {
    // The paper's Section 8 extension: hot pages mirrored, the rest under
    // N+1 parity. A node loss must still recover value-exactly, crossing
    // both regions.
    use revive::machine::ReviveMode;
    let mut cfg = ExperimentConfig::test_small(AppId::Ocean);
    cfg.revive.mode = ReviveMode::Mixed {
        group_data_pages: 3,
        mirrored_fraction: 0.25,
    };
    let interval = cfg.revive.ckpt.interval;
    let plan = InjectionPlan::paper_worst_case(interval, NodeId(2));
    let result = Runner::new(cfg).unwrap().run_with_injection(plan).unwrap();
    assert_eq!(result.recovery.unwrap().verified, Some(true));
}

#[test]
fn mixed_mode_storage_sits_between_parity_and_mirroring() {
    use revive::core::parity::ParityMap;
    use revive::mem::addr::AddressMap;
    let map = AddressMap::new(16, 1024 * 4096);
    let parity = ParityMap::new(map, 7).storage_overhead();
    let mirror = ParityMap::new(map, 1).storage_overhead();
    let mixed = ParityMap::mixed(map, 7, 256).storage_overhead();
    assert!(
        parity < mixed && mixed < mirror,
        "{parity} {mixed} {mirror}"
    );
}

#[test]
fn survives_two_errors_back_to_back() {
    // A node loss followed (several checkpoints later) by a machine-wide
    // transient: the machine must recover exactly from both and still
    // finish its budget. Exercises log scrubbing and interval renumbering
    // after the first recovery.
    let mut cfg = ExperimentConfig::test_small(AppId::Fft);
    cfg.ops_per_cpu = 120_000;
    let interval = cfg.revive.ckpt.interval;
    let plans = [
        InjectionPlan::paper_worst_case(interval, NodeId(1)),
        InjectionPlan {
            detection_delay: Ns((interval.0 as f64 * 0.4) as u64),
            interval_fraction: 0.5,
            ..InjectionPlan::paper_transient(interval)
        },
    ];
    let result = Runner::new(cfg)
        .unwrap()
        .run_with_injections(&plans)
        .unwrap();
    assert_eq!(result.recoveries.len(), 2);
    for (i, rec) in result.recoveries.iter().enumerate() {
        assert_eq!(rec.verified, Some(true), "recovery {i} mismatched");
    }
    // First was a node loss (log pages rebuilt), second a transient.
    assert!(result.recoveries[0].report.log_pages_rebuilt > 0);
    assert_eq!(result.recoveries[1].report.log_pages_rebuilt, 0);
    assert_eq!(result.metrics.traffic.cpu_ops, 4 * 120_000);
}

/// Full Table-4 calibration at experiment scale. Slow (~2 min release);
/// run with `cargo test --release -- --ignored table4_calibration`.
#[test]
#[ignore = "slow: full experiment-scale calibration sweep"]
fn table4_calibration_structure_holds() {
    use revive::machine::MachineConfig;
    let mut rates: Vec<(AppId, f64)> = Vec::new();
    for app in AppId::ALL {
        let cfg = ExperimentConfig {
            machine: MachineConfig::scaled(),
            revive: ReviveConfig::off(),
            workload: WorkloadSpec::Splash(app),
            ops_per_cpu: 300_000,
            seed: 2002,
            shadow_checkpoints: false,
            obs: revive::machine::ObsConfig::off(),
            detection_fraction: ExperimentConfig::DEFAULT_DETECTION_FRACTION,
            sim_threads: 1,
            engine_prof: false,
        };
        let r = Runner::new(cfg).unwrap().run().unwrap();
        rates.push((app, r.metrics.l2_miss_rate()));
    }
    let mut sorted = rates.clone();
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
    let top3: Vec<AppId> = sorted.iter().take(3).map(|(a, _)| *a).collect();
    for expected in [AppId::Fft, AppId::Ocean, AppId::Radix] {
        assert!(top3.contains(&expected), "top3={top3:?}");
    }
    let water = rates.iter().find(|(a, _)| *a == AppId::WaterN2).unwrap().1;
    assert!(water < 0.001, "water miss rate {water}");
    // Every non-streaming app stays below 1%.
    for (app, rate) in &rates {
        if !app.working_set_exceeds_l2() {
            assert!(*rate < 0.01, "{app}: {rate}");
        }
    }
}

#[test]
fn losing_a_nonexistent_node_is_rejected() {
    let cfg = ExperimentConfig::test_small(AppId::Lu);
    let interval = cfg.revive.ckpt.interval;
    let plan = InjectionPlan::paper_worst_case(interval, NodeId(99));
    assert!(Runner::new(cfg).unwrap().run_with_injection(plan).is_err());
}
