//! Observability integration tests: artifact determinism, traffic
//! conservation, and the guarantee that tracing/sampling never perturb the
//! simulation they observe.

use revive::machine::{
    parse_json, render_artifact, validate_artifact, ExperimentConfig, ObsConfig, RunMeta, Runner,
    TrafficClass, WorkloadSpec,
};
use revive::sim::time::Ns;
use revive::workloads::{AppId, SyntheticKind};

fn observed_cfg(app: AppId) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::test_small(app);
    cfg.obs = ObsConfig::full();
    cfg
}

/// Two runs of the same seeded configuration must produce byte-identical
/// artifacts — the whole point of the hand-rolled writer.
#[test]
fn identical_seeded_runs_produce_byte_identical_artifacts() {
    let cfg = observed_cfg(AppId::Fft);
    let run = || Runner::new(cfg).unwrap().run().unwrap();
    let meta = RunMeta::from_config("obs_determinism", &cfg);
    let a = render_artifact(&meta, &run());
    let b = render_artifact(&meta, &run());
    assert_eq!(a, b, "artifacts from identical seeded runs differ");
    validate_artifact(&a).expect("artifact must satisfy its own schema");
}

/// The artifact of an observed run carries every promised section with real
/// content: epochs, checkpoint timelines, latency histograms, trace counts.
#[test]
fn artifact_contains_epochs_timelines_latencies_and_trace() {
    let cfg = observed_cfg(AppId::Fft);
    let result = Runner::new(cfg).unwrap().run().unwrap();
    assert!(!result.epochs.is_empty(), "sampling produced no epochs");
    assert!(
        result.trace.summary().retained > 0,
        "tracing recorded nothing"
    );
    let text = render_artifact(&RunMeta::from_config("obs_sections", &cfg), &result);
    let doc = parse_json(&text).unwrap();
    assert!(!doc.get("epochs").unwrap().as_arr().unwrap().is_empty());
    assert!(!doc
        .get("checkpoints_timeline")
        .unwrap()
        .as_arr()
        .unwrap()
        .is_empty());
    let lat = doc.get("latency_ns").unwrap();
    let rd = lat.get("RD/RDX").unwrap();
    assert!(rd.get("total").unwrap().as_num().unwrap() > 0.0);
    let trace = doc.get("trace").unwrap();
    assert!(trace.get("retained").unwrap().as_num().unwrap() > 0.0);
}

/// Turning the full observability stack on must not change what the
/// simulation does — identical sim time, checkpoint count, and traffic.
#[test]
fn observability_does_not_perturb_the_simulation() {
    let base_cfg = ExperimentConfig::test_small(AppId::Lu);
    assert!(
        !base_cfg.obs.tracing() && !base_cfg.obs.sampling(),
        "default must be off"
    );
    let base = Runner::new(base_cfg).unwrap().run().unwrap();
    let observed = Runner::new(observed_cfg(AppId::Lu)).unwrap().run().unwrap();
    assert_eq!(base.sim_time, observed.sim_time);
    assert_eq!(base.checkpoints, observed.checkpoints);
    assert_eq!(
        base.metrics.traffic.net_bytes,
        observed.metrics.traffic.net_bytes
    );
    assert_eq!(
        base.metrics.traffic.net_msgs,
        observed.metrics.traffic.net_msgs
    );
    assert_eq!(
        base.metrics.traffic.cpu_ops,
        observed.metrics.traffic.cpu_ops
    );
    assert_eq!(base.metrics.l2_misses, observed.metrics.l2_misses);
    // The observed run actually observed something.
    assert!(!observed.epochs.is_empty());
    assert!(base.epochs.is_empty() && base.trace.summary().retained == 0);
}

/// Conservation: the per-class byte/message counters must account for
/// exactly what the fabric delivered, and class splits must sum to the
/// totals, across the injection-matrix apps and a SPLASH baseline.
#[test]
fn traffic_counters_conserve_fabric_deliveries() {
    let mut cfgs = Vec::new();
    for kind in [SyntheticKind::WsExceedsL2, SyntheticKind::WsFitsDirty] {
        let mut cfg = ExperimentConfig::test_small(AppId::Lu);
        cfg.workload = WorkloadSpec::Synthetic(kind);
        cfg.ops_per_cpu = 30_000;
        cfgs.push(cfg);
    }
    cfgs.push(ExperimentConfig::test_small(AppId::Radix));
    for cfg in cfgs {
        let r = Runner::new(cfg).unwrap().run().unwrap();
        let t = &r.metrics.traffic;
        let name = cfg.workload.name();
        assert!(t.net_bytes_total() > 0, "{name}: no traffic at all");
        assert_eq!(
            t.net_bytes_total(),
            r.fabric.bytes,
            "{name}: class byte split disagrees with fabric deliveries"
        );
        assert_eq!(
            t.net_msgs.iter().sum::<u64>(),
            r.fabric.messages,
            "{name}: class message split disagrees with fabric deliveries"
        );
        assert_eq!(
            t.net_bytes.iter().sum::<u64>(),
            t.net_bytes_total(),
            "{name}: net_bytes_total is not the class sum"
        );
        // Every delivered message got exactly one latency sample.
        for class in TrafficClass::ALL {
            assert_eq!(
                r.metrics.net_latency_hist(class).total(),
                t.net_msgs[class.index()],
                "{name}: latency histogram count mismatch for {}",
                class.name()
            );
        }
    }
}

/// Sampling epochs are strictly ordered and their per-epoch deltas sum to
/// no more than the end-of-run totals — the contract the artifact's time
/// series relies on.
#[test]
fn epoch_series_is_ordered_and_sums_to_totals() {
    let cfg = observed_cfg(AppId::Ocean);
    let r = Runner::new(cfg).unwrap().run().unwrap();
    assert!(r.epochs.len() >= 2, "run too short for a time series");
    let mut prev_t = Ns::ZERO;
    let mut prev_ckpts = 0u64;
    let mut bytes = 0u64;
    let mut ops = 0u64;
    for e in &r.epochs {
        assert!(e.t > prev_t, "epoch timestamps must strictly increase");
        assert!(
            e.checkpoints >= prev_ckpts,
            "checkpoint gauge went backwards"
        );
        bytes += e.net_bytes_total();
        ops += e.ops;
        prev_t = e.t;
        prev_ckpts = e.checkpoints;
    }
    assert!(ops > 0 && bytes > 0, "epochs recorded no activity");
    // The tail after the last sample is not covered by any epoch, so the
    // deltas can only undershoot the totals, never overshoot.
    assert!(ops <= r.metrics.traffic.cpu_ops);
    assert!(bytes <= r.metrics.traffic.net_bytes_total());
}
