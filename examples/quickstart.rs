//! Quickstart: build a ReVive-protected multiprocessor, run a workload,
//! and look at what the recovery hardware did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use revive::machine::{ExperimentConfig, Runner, TrafficClass, WorkloadSpec};
use revive::workloads::AppId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16-node CC-NUMA machine (Table 3 of the paper, caches scaled per
    // EXPERIMENTS.md) running an FFT-like workload with 7+1 parity and
    // periodic global checkpoints.
    let mut cfg = ExperimentConfig::experiment(
        WorkloadSpec::Splash(AppId::Fft),
        revive::machine::ReviveConfig::parity(revive::sim::time::Ns::from_us(500)),
    );
    cfg.ops_per_cpu = 300_000; // a few checkpoint intervals, still snappy

    let result = Runner::new(cfg)?.run()?;

    println!("simulated time          : {}", result.sim_time);
    println!("events processed        : {}", result.events);
    println!(
        "memory ops / instructions: {} / {}",
        result.metrics.traffic.cpu_ops, result.metrics.traffic.instructions
    );
    println!(
        "global L2 miss rate     : {:.2}%",
        100.0 * result.metrics.l2_miss_rate()
    );
    println!();
    println!("--- ReVive activity ---");
    println!("checkpoints committed   : {}", result.checkpoints);
    println!("mean checkpoint cost    : {}", result.ckpt.mean_duration());
    println!(
        "lines logged (Fig 5a/5b): {} / {}",
        result.metrics.costs.rdx_unlogged, result.metrics.costs.wb_unlogged
    );
    println!(
        "parity network traffic  : {:.2} MB",
        result.metrics.traffic.net_bytes[TrafficClass::Par.index()] as f64 / 1e6
    );
    println!(
        "peak log usage (a node) : {:.0} KB",
        result.metrics.max_log_bytes() as f64 / 1024.0
    );
    Ok(())
}
