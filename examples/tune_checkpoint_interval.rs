//! Tuning the checkpoint interval: the paper's central trade-off.
//!
//! Short intervals bound lost work (good availability) but pay flush
//! overhead constantly; long intervals are nearly free during error-free
//! execution but lose more work per error and need bigger logs. This
//! example sweeps the interval on one workload and prints both sides,
//! ending with the availability each point would deliver on the paper's
//! real machine (one error per day, Section 3.3.2).
//!
//! ```text
//! cargo run --release --example tune_checkpoint_interval
//! ```

use revive::core::availability::{nines, AvailabilityModel};
use revive::machine::{ExperimentConfig, ReviveConfig, Runner, WorkloadSpec};
use revive::sim::time::Ns;
use revive::workloads::AppId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = AppId::Cholesky;
    let ops = 400_000;

    let mut base_cfg = ExperimentConfig::experiment(WorkloadSpec::Splash(app), ReviveConfig::off());
    base_cfg.ops_per_cpu = ops;
    let base = Runner::new(base_cfg)?.run()?;
    println!(
        "workload: {} | baseline time {}\n",
        app.name(),
        base.sim_time
    );
    println!(
        "{:>10}  {:>9}  {:>6}  {:>10}  {:>12}  {:>7}",
        "interval", "overhead%", "ckpts", "peak log", "avg unavail", "nines"
    );

    for ms in [1u64, 2, 4, 8] {
        let interval = Ns::from_ms(ms);
        let mut cfg =
            ExperimentConfig::experiment(WorkloadSpec::Splash(app), ReviveConfig::parity(interval));
        cfg.ops_per_cpu = ops;
        let r = Runner::new(cfg)?.run()?;
        let overhead = 100.0 * (r.sim_time.0 as f64 / base.sim_time.0 as f64 - 1.0);
        // Project availability on the paper's real machine: the real
        // interval scales with the cache ratio (EXPERIMENTS.md), recovery
        // phases scale with the interval.
        let real_interval = Ns(interval.0 * 50);
        let model = AvailabilityModel {
            checkpoint_interval: real_interval,
            detection_latency: Ns::from_ms(80),
            hw_recovery: Ns::from_ms(50),
            phase2: Ns(real_interval.0 / 2),
            phase3: Ns(real_interval.0 * 2),
        };
        let a = model.availability_average(Ns::from_secs(86_400));
        println!(
            "{:>10}  {:>9.1}  {:>6}  {:>8.0}KB  {:>12}  {:>7.1}",
            interval.to_string(),
            overhead,
            r.checkpoints,
            r.metrics.max_log_bytes() as f64 / 1024.0,
            model.average_unavailable().to_string(),
            nines(a),
        );
    }
    println!(
        "\nreading: pick the longest interval whose availability still meets\n\
         the target (the paper chooses 100 ms real-machine intervals for\n\
         99.999% at one error/day) — not the shortest one you can afford."
    );
    Ok(())
}
