//! Fault injection: kill an entire node mid-run and watch ReVive bring the
//! machine back — with the restored memory verified byte-for-byte against
//! a shadow snapshot of the recovered checkpoint.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use revive::machine::{ErrorKind, ExperimentConfig, InjectionPlan, Runner, WorkloadSpec};
use revive::sim::time::Ns;
use revive::sim::types::NodeId;
use revive::workloads::AppId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let interval = Ns::from_ms(1);
    let mut cfg = ExperimentConfig::experiment(
        WorkloadSpec::Splash(AppId::Ocean),
        revive::machine::ReviveConfig::parity(interval),
    );
    cfg.ops_per_cpu = 800_000; // several checkpoint intervals of work
    cfg.revive.ckpt.retained = 3;
    cfg.shadow_checkpoints = true; // enables value-exact verification

    for (label, kind) in [
        ("permanent loss of node 5", ErrorKind::NodeLoss(NodeId(5))),
        (
            "machine-wide transient (all caches lost)",
            ErrorKind::CacheWipe,
        ),
    ] {
        println!("=== injecting: {label} ===");
        let plan = InjectionPlan {
            kind,
            ..InjectionPlan::paper_worst_case(interval, NodeId(5))
        };
        let result = Runner::new(cfg)?.run_with_injection(plan)?;
        let rec = result.recovery.expect("recovery ran");
        println!("rolled back to checkpoint : {}", rec.target_interval);
        println!("phase 1 (hw recovery)     : {}", rec.report.phase1);
        println!(
            "phase 2 (rebuild logs)    : {} ({} pages from parity)",
            rec.report.phase2, rec.report.log_pages_rebuilt
        );
        println!(
            "phase 3 (rollback)        : {} ({} log entries replayed)",
            rec.report.phase3, rec.report.entries_replayed
        );
        println!(
            "phase 4 (background)      : {} ({} pages)",
            rec.report.phase4, rec.report.pages_rebuilt_background
        );
        println!("lost work                 : {}", rec.lost_work);
        println!("machine unavailable       : {}", rec.unavailable);
        println!(
            "memory verified vs shadow : {}",
            match rec.verified {
                Some(true) => "EXACT MATCH (incl. parity invariant)",
                Some(false) => "MISMATCH (bug!)",
                None => "no snapshot available",
            }
        );
        println!(
            "run then completed its remaining budget ({} ops total)\n",
            result.metrics.traffic.cpu_ops
        );
    }

    // Back-to-back errors: lose a node, recover, then take a transient.
    println!("=== injecting: node loss followed by a transient ===");
    let plans = [
        InjectionPlan::paper_worst_case(interval, NodeId(3)),
        InjectionPlan::paper_transient(interval),
    ];
    let result = Runner::new(cfg)?.run_with_injections(&plans)?;
    for (i, rec) in result.recoveries.iter().enumerate() {
        println!(
            "recovery {}: unavailable {}, {} entries replayed, verified: {}",
            i + 1,
            rec.unavailable,
            rec.report.entries_replayed,
            matches!(rec.verified, Some(true)),
        );
    }
    Ok(())
}
