//! Parity vs mirroring: the paper's memory-vs-performance trade-off
//! (Sections 3.2.1 and 6.1).
//!
//! N+1 parity spends 1/(N+1) of memory and pays XOR read-modify-writes on
//! every update; mirroring spends half of memory but each update is a
//! single remote write. The paper suggests machines could even mix the two
//! (hot pages mirrored, the rest parity-protected).
//!
//! ```text
//! cargo run --release --example parity_vs_mirroring
//! ```

use revive::core::parity::ParityMap;
use revive::machine::{ExperimentConfig, ReviveConfig, Runner, WorkloadSpec};
use revive::mem::addr::AddressMap;
use revive::sim::time::Ns;
use revive::workloads::AppId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let interval = Ns::from_ms(2);
    let ops = 400_000;
    println!(
        "{:>10}  {:>10}  {:>10}  {:>10}  {:>12}  {:>10}",
        "app", "parity%", "mixed25%", "mirror%", "parity mem", "mirror mem"
    );
    for app in [AppId::Fft, AppId::Radix, AppId::Lu] {
        let mut base_cfg =
            ExperimentConfig::experiment(WorkloadSpec::Splash(app), ReviveConfig::off());
        base_cfg.ops_per_cpu = ops;
        let base = Runner::new(base_cfg)?.run()?;

        let time_with = |revive: ReviveConfig| -> Result<Ns, Box<dyn std::error::Error>> {
            let mut cfg = ExperimentConfig::experiment(WorkloadSpec::Splash(app), revive);
            cfg.ops_per_cpu = ops;
            Ok(Runner::new(cfg)?.run()?.sim_time)
        };
        let t_parity = time_with(ReviveConfig::parity(interval))?;
        let t_mirror = time_with(ReviveConfig::mirroring(interval))?;
        let t_mixed = {
            let mut c = ReviveConfig::parity(interval);
            c.mode = revive::machine::ReviveMode::Mixed {
                group_data_pages: 7,
                mirrored_fraction: 0.25,
            };
            time_with(c)?
        };

        let map = AddressMap::new(16, 2 * 1024 * 1024);
        let pct = |t: Ns| 100.0 * (t.0 as f64 / base.sim_time.0 as f64 - 1.0);
        println!(
            "{:>10}  {:>10.1}  {:>10.1}  {:>10.1}  {:>11.1}%  {:>9.0}%",
            app.name(),
            pct(t_parity),
            pct(t_mixed),
            pct(t_mirror),
            100.0 * ParityMap::new(map, 7).storage_overhead(),
            100.0 * ParityMap::new(map, 1).storage_overhead(),
        );
    }
    println!(
        "\nexpected shape (paper Fig 8 + §6.2): mirroring is faster — each\n\
         update is one write instead of XOR read-modify-writes — but costs\n\
         50% of memory where 7+1 parity costs 12.5%."
    );
    Ok(())
}
