//! # ReVive — rollback recovery for shared-memory multiprocessors
//!
//! This is a from-scratch Rust reproduction of *"ReVive: Cost-Effective
//! Architectural Support for Rollback Recovery in Shared-Memory
//! Multiprocessors"* (Prvulovic, Zhang, Torrellas; ISCA 2002), including the
//! full CC-NUMA directory-coherence simulator substrate the paper evaluates
//! on.
//!
//! This crate is a facade that re-exports the workspace crates:
//!
//! * [`sim`] — discrete-event simulation kernel (time, events, resources,
//!   statistics, deterministic RNG).
//! * [`net`] — 2-D torus interconnect with virtual cut-through routing and
//!   link contention.
//! * [`mem`] — addresses, set-associative write-back caches, banked DRAM
//!   timing, and functional (data-carrying) main memory.
//! * [`coherence`] — full-map MESI directory cache-coherence protocol.
//! * [`core`] — the paper's contribution: hardware logging, distributed N+1
//!   parity / mirroring, global two-phase-commit checkpointing, and
//!   multi-phase rollback recovery.
//! * [`workloads`] — synthetic SPLASH-2-like workload models (Table 4).
//! * [`machine`] — node/system assembly, the timing CPU model, metrics, and
//!   experiment runners.
//! * [`harness`] — parallel experiment orchestration: the worker pool with
//!   deterministic result ordering, the content-addressed result cache, and
//!   the shared sweep CLI.
//!
//! ## Quickstart
//!
//! ```
//! use revive::machine::{ExperimentConfig, Runner};
//! use revive::workloads::AppId;
//!
//! # fn main() -> Result<(), revive::machine::MachineError> {
//! // A small 4-node system running a scaled-down FFT-like workload.
//! let mut cfg = ExperimentConfig::test_small(AppId::Fft);
//! cfg.ops_per_cpu = 5_000; // keep the doctest fast
//! let result = Runner::new(cfg)?.run()?;
//! assert!(result.sim_time > revive::sim::time::Ns::ZERO);
//! println!("L2 miss rate: {:.2}%", 100.0 * result.metrics.l2_miss_rate());
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios: error injection
//! and recovery, checkpoint-interval tuning, and parity-vs-mirroring
//! trade-offs. The `crates/bench` binaries regenerate every table and figure
//! of the paper's evaluation section.

pub use revive_coherence as coherence;
pub use revive_core as core;
pub use revive_harness as harness;
pub use revive_machine as machine;
pub use revive_mem as mem;
pub use revive_net as net;
pub use revive_sim as sim;
pub use revive_workloads as workloads;
